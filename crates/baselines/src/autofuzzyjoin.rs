//! The Auto-FuzzyJoin baseline (Li et al., SIGMOD 2021).
//!
//! Auto-FuzzyJoin ("AFJ" in the paper's Table 3) joins two columns with
//! similarity functions rather than transformations: it considers a family of
//! similarity measures, automatically selects a measure/threshold
//! configuration that looks precise without needing labels, and returns the
//! row pairs above the chosen threshold. It produces no transformations and
//! therefore no interpretable join patterns — the property the paper
//! contrasts against.
//!
//! This implementation keeps the ingredients that drive AFJ's reported
//! behaviour: a measure family (n-gram Jaccard, n-gram containment,
//! longest-common-substring ratio), a left-to-right one-to-many join
//! direction, a candidate pre-filter via an n-gram index, and an automatic
//! threshold chosen by maximizing an unsupervised precision proxy (the
//! relative margin between each source row's best and second-best match).

use serde::{Deserialize, Serialize};
use tjoin_datasets::ColumnPair;
use tjoin_matching::RowMatch;
use tjoin_text::{
    lcs_ratio, ngram_containment, ngram_jaccard, normalize_for_matching, NGramIndex,
    NormalizeOptions,
};

/// The similarity measures AFJ may select from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimilarityMeasure {
    /// Jaccard similarity of character n-gram sets.
    NGramJaccard,
    /// Containment of the source's n-gram set in the target's.
    NGramContainment,
    /// Longest-common-substring length over the shorter string's length.
    LcsRatio,
}

impl SimilarityMeasure {
    /// All measures in the selection family.
    pub const ALL: [SimilarityMeasure; 3] = [
        SimilarityMeasure::NGramJaccard,
        SimilarityMeasure::NGramContainment,
        SimilarityMeasure::LcsRatio,
    ];

    /// Computes the measure between two normalized strings.
    pub fn compute(&self, a: &str, b: &str, n: usize) -> f64 {
        match self {
            SimilarityMeasure::NGramJaccard => ngram_jaccard(a, b, n),
            SimilarityMeasure::NGramContainment => ngram_containment(b, a, n),
            SimilarityMeasure::LcsRatio => lcs_ratio(a, b),
        }
    }
}

/// Configuration of the Auto-FuzzyJoin baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoFuzzyJoinConfig {
    /// n-gram size used by the set-based measures and the candidate index.
    pub ngram_size: usize,
    /// Candidate pre-filter: only target rows sharing at least one n-gram
    /// with the source row are scored.
    pub index_ngram_size: usize,
    /// Measures considered during auto-configuration.
    pub measures: Vec<SimilarityMeasure>,
    /// Threshold grid searched during auto-configuration.
    pub threshold_grid: Vec<f64>,
    /// Normalization applied before scoring.
    pub normalize: NormalizeOptions,
    /// When set, skip auto-configuration and use this fixed (measure,
    /// threshold) pair.
    pub fixed: Option<(SimilarityMeasure, f64)>,
}

impl Default for AutoFuzzyJoinConfig {
    fn default() -> Self {
        Self {
            ngram_size: 3,
            index_ngram_size: 3,
            measures: SimilarityMeasure::ALL.to_vec(),
            threshold_grid: vec![0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            normalize: NormalizeOptions::default(),
            fixed: None,
        }
    }
}

/// The Auto-FuzzyJoin baseline joiner.
#[derive(Debug, Clone, Default)]
pub struct AutoFuzzyJoin {
    config: AutoFuzzyJoinConfig,
}

/// Result of an AFJ run: the predicted joinable pairs plus the configuration
/// it selected.
#[derive(Debug, Clone)]
pub struct AutoFuzzyJoinResult {
    /// Predicted joinable row pairs.
    pub pairs: Vec<RowMatch>,
    /// The similarity measure selected.
    pub measure: SimilarityMeasure,
    /// The threshold selected.
    pub threshold: f64,
}

impl AutoFuzzyJoin {
    /// Creates the joiner with the given configuration.
    pub fn new(config: AutoFuzzyJoinConfig) -> Self {
        assert!(config.ngram_size >= 1);
        assert!(!config.threshold_grid.is_empty());
        assert!(!config.measures.is_empty());
        Self { config }
    }

    /// Joins the two columns of `pair`, returning predicted row pairs.
    pub fn join(&self, pair: &ColumnPair) -> AutoFuzzyJoinResult {
        let source: Vec<String> = pair
            .source
            .iter()
            .map(|v| normalize_for_matching(v, &self.config.normalize))
            .collect();
        let target: Vec<String> = pair
            .target
            .iter()
            .map(|v| normalize_for_matching(v, &self.config.normalize))
            .collect();
        let index = NGramIndex::build(&target, self.config.index_ngram_size, self.config.index_ngram_size);

        // Candidate targets per source row via the n-gram pre-filter.
        let candidates: Vec<Vec<u32>> = source
            .iter()
            .map(|s| {
                let grams = tjoin_text::char_ngrams(s, self.config.index_ngram_size);
                index.rows_containing_any(grams)
            })
            .collect();

        let (measure, threshold) = match self.config.fixed {
            Some(cfg) => cfg,
            None => self.auto_configure(&source, &target, &candidates),
        };

        let mut pairs = Vec::new();
        for (src_row, cands) in candidates.iter().enumerate() {
            for &tgt_row in cands {
                let sim = measure.compute(
                    &source[src_row],
                    &target[tgt_row as usize],
                    self.config.ngram_size,
                );
                if sim >= threshold {
                    pairs.push(RowMatch {
                        source_row: src_row as u32,
                        target_row: tgt_row,
                    });
                }
            }
        }
        AutoFuzzyJoinResult {
            pairs,
            measure,
            threshold,
        }
    }

    /// Unsupervised configuration selection: for every (measure, threshold)
    /// combination, score the join by an estimated-precision proxy — the
    /// average margin between each matched source row's best and second-best
    /// candidate — times the number of matched rows (so degenerate
    /// "match nothing" configurations do not win). The best-scoring
    /// configuration is returned.
    fn auto_configure(
        &self,
        source: &[String],
        target: &[String],
        candidates: &[Vec<u32>],
    ) -> (SimilarityMeasure, f64) {
        let mut best: Option<(f64, SimilarityMeasure, f64)> = None;
        for &measure in &self.config.measures {
            // Pre-compute per-source best and second-best similarity.
            let mut best_sims: Vec<(f64, f64)> = Vec::with_capacity(source.len());
            for (src_row, cands) in candidates.iter().enumerate() {
                let mut top = 0.0f64;
                let mut second = 0.0f64;
                for &t in cands {
                    let sim = measure.compute(&source[src_row], &target[t as usize], self.config.ngram_size);
                    if sim > top {
                        second = top;
                        top = sim;
                    } else if sim > second {
                        second = sim;
                    }
                }
                best_sims.push((top, second));
            }
            for &threshold in &self.config.threshold_grid {
                let matched: Vec<&(f64, f64)> =
                    best_sims.iter().filter(|(top, _)| *top >= threshold).collect();
                if matched.is_empty() {
                    continue;
                }
                let margin: f64 = matched
                    .iter()
                    .map(|(top, second)| (top - second).max(0.0))
                    .sum::<f64>()
                    / matched.len() as f64;
                let coverage = matched.len() as f64 / source.len().max(1) as f64;
                let score = margin * coverage.sqrt();
                if best.map(|(s, _, _)| score > s).unwrap_or(true) {
                    best = Some((score, measure, threshold));
                }
            }
        }
        best.map(|(_, m, t)| (m, t))
            .unwrap_or((SimilarityMeasure::NGramJaccard, 0.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abbreviation_pair() -> ColumnPair {
        ColumnPair::aligned(
            "staff",
            vec![
                "Rafiei, Davood".into(),
                "Nascimento, Mario".into(),
                "Bowling, Michael".into(),
                "Gosgnach, Simon".into(),
            ],
            vec![
                "D Rafiei".into(),
                "M Nascimento".into(),
                "M Bowling".into(),
                "S Gosgnach".into(),
            ],
        )
    }

    #[test]
    fn joins_similar_values() {
        let afj = AutoFuzzyJoin::default();
        let result = afj.join(&abbreviation_pair());
        // Every true pair shares the distinctive last name and must be found.
        for i in 0..4u32 {
            assert!(
                result.pairs.iter().any(|m| m.source_row == i && m.target_row == i),
                "missing true pair {i}: {result:?}"
            );
        }
    }

    #[test]
    fn cannot_join_dissimilar_representations() {
        // Name to user-id style emails share almost no n-grams after the
        // initial; similarity joining misses most pairs (the weakness the
        // paper's transformation-based approach addresses).
        let pair = ColumnPair::aligned(
            "ids",
            vec!["Rafiei, Davood".into(), "Bowling, Michael".into()],
            vec!["drafiei".into(), "mbowling".into()],
        );
        let afj = AutoFuzzyJoin::new(AutoFuzzyJoinConfig {
            fixed: Some((SimilarityMeasure::NGramJaccard, 0.8)),
            ..AutoFuzzyJoinConfig::default()
        });
        let result = afj.join(&pair);
        assert!(result.pairs.len() < 2, "unexpectedly joined: {result:?}");
    }

    #[test]
    fn fixed_configuration_respected() {
        let afj = AutoFuzzyJoin::new(AutoFuzzyJoinConfig {
            fixed: Some((SimilarityMeasure::LcsRatio, 0.9)),
            ..AutoFuzzyJoinConfig::default()
        });
        let result = afj.join(&abbreviation_pair());
        assert_eq!(result.measure, SimilarityMeasure::LcsRatio);
        assert!((result.threshold - 0.9).abs() < 1e-12);
    }

    #[test]
    fn auto_configuration_picks_some_measure() {
        let afj = AutoFuzzyJoin::default();
        let result = afj.join(&abbreviation_pair());
        assert!(SimilarityMeasure::ALL.contains(&result.measure));
        assert!(result.threshold > 0.0 && result.threshold <= 1.0);
    }

    #[test]
    fn empty_columns() {
        let afj = AutoFuzzyJoin::default();
        let result = afj.join(&ColumnPair::default());
        assert!(result.pairs.is_empty());
    }

    #[test]
    fn measures_are_bounded() {
        for m in SimilarityMeasure::ALL {
            let v = m.compute("rafiei davood", "d rafiei", 3);
            assert!((0.0..=1.0).contains(&v), "{m:?} out of range: {v}");
        }
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        let _ = AutoFuzzyJoin::new(AutoFuzzyJoinConfig {
            threshold_grid: vec![],
            ..AutoFuzzyJoinConfig::default()
        });
    }
}
