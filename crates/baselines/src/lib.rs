//! # tjoin-baselines
//!
//! The baselines the paper compares against, implemented from scratch:
//!
//! * [`naive`] — the brute-force enumeration of Section 3.1: every unit with
//!   every parameter assignment, composed into transformations, each
//!   evaluated against every pair. Exponential; only usable on tiny inputs
//!   and provided to make the cost argument concrete.
//! * [`autojoin`] — Auto-Join (Zhu et al., VLDB 2017; Section 3.2 of the
//!   paper): sample small subsets of the input, and for each subset run a
//!   recursive best-first search that picks the unit covering the largest
//!   part of the target, recurses on the remaining left and right context,
//!   and backtracks on failure. The transformations found across subsets form
//!   the final set.
//! * [`autofuzzyjoin`] — Auto-FuzzyJoin (Li et al., SIGMOD 2021): a
//!   similarity-based joiner that produces row pairs directly (no
//!   transformations), with an automatically chosen similarity threshold.
//!   Used in the end-to-end join comparison (Table 3).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod autofuzzyjoin;
pub mod autojoin;
pub mod naive;

pub use autofuzzyjoin::{AutoFuzzyJoin, AutoFuzzyJoinConfig};
pub use autojoin::{AutoJoin, AutoJoinConfig, AutoJoinResult};
pub use naive::{NaiveSynthesis, NaiveSynthesisConfig};
