//! The naive brute-force baseline (Section 3.1 of the paper).
//!
//! Enumerates every transformation unit with every parameter assignment
//! bounded by the input lengths, composes them into transformations of up to
//! `max_units` units, applies each candidate to every input pair, and then
//! selects the maximum-coverage transformation and a greedy covering set.
//! The candidate count is `O((u · l^z)^k)` and explodes immediately — the
//! configuration carries hard caps so the baseline stays runnable on the tiny
//! inputs used to demonstrate the cost difference.

use tjoin_text::FxHashSet;
use tjoin_units::{CharStr, Transformation, Unit, UnitKind};

/// Configuration (mostly safety caps) for the naive baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveSynthesisConfig {
    /// Maximum number of units composed into one transformation.
    pub max_units: usize,
    /// Unit kinds to enumerate.
    pub unit_kinds: Vec<UnitKind>,
    /// Hard cap on enumerated single units (guards against parameter blowup).
    pub max_single_units: usize,
    /// Hard cap on enumerated transformations (guards against composition
    /// blowup).
    pub max_transformations: usize,
}

impl Default for NaiveSynthesisConfig {
    fn default() -> Self {
        Self {
            max_units: 2,
            unit_kinds: vec![UnitKind::Substr, UnitKind::Split, UnitKind::Literal],
            max_single_units: 20_000,
            max_transformations: 2_000_000,
        }
    }
}

/// The naive brute-force synthesizer.
#[derive(Debug, Clone, Default)]
pub struct NaiveSynthesis {
    config: NaiveSynthesisConfig,
}

/// Result of a naive run.
#[derive(Debug, Clone)]
pub struct NaiveResult {
    /// The transformation with the largest coverage, if any candidate covers
    /// at least one pair.
    pub best: Option<(Transformation, usize)>,
    /// Number of single units enumerated.
    pub units_enumerated: usize,
    /// Number of composed transformations evaluated.
    pub transformations_evaluated: usize,
}

impl NaiveSynthesis {
    /// Creates the baseline with the given caps.
    pub fn new(config: NaiveSynthesisConfig) -> Self {
        assert!(config.max_units >= 1);
        Self { config }
    }

    /// Enumerates every unit parameterization valid for strings up to the
    /// maximum source length and every literal drawn from target substrings.
    fn enumerate_units(&self, pairs: &[(CharStr, String)]) -> Vec<Unit> {
        let max_len = pairs.iter().map(|(s, _)| s.char_len()).max().unwrap_or(0);
        let mut alphabet: FxHashSet<char> = FxHashSet::default();
        for (s, _) in pairs {
            alphabet.extend(s.chars());
        }
        let mut units = Vec::new();
        let push = |u: Unit, units: &mut Vec<Unit>| {
            if units.len() < self.config.max_single_units {
                units.push(u);
            }
        };

        if self.config.unit_kinds.contains(&UnitKind::Substr) {
            for s in 0..max_len {
                for e in (s + 1)..=max_len {
                    push(Unit::substr(s, e), &mut units);
                }
            }
        }
        if self.config.unit_kinds.contains(&UnitKind::Split) {
            for &c in &alphabet {
                for i in 0..max_len.min(16) {
                    push(Unit::split(c, i), &mut units);
                }
            }
        }
        if self.config.unit_kinds.contains(&UnitKind::SplitSubstr) {
            for &c in &alphabet {
                for i in 0..max_len.min(8) {
                    for s in 0..max_len.min(16) {
                        for e in (s + 1)..=max_len.min(16) {
                            push(Unit::split_substr(c, i, s, e), &mut units);
                        }
                    }
                }
            }
        }
        if self.config.unit_kinds.contains(&UnitKind::Literal) {
            // Literals drawn from substrings of the targets (any other literal
            // can never appear in a covering transformation).
            let mut literals: FxHashSet<String> = FxHashSet::default();
            for (_, t) in pairs {
                let chars: Vec<char> = t.chars().collect();
                for i in 0..chars.len() {
                    for j in (i + 1)..=chars.len().min(i + 8) {
                        literals.insert(chars[i..j].iter().collect());
                    }
                }
            }
            for l in literals {
                push(Unit::literal(l), &mut units);
            }
        }
        units
    }

    /// Runs the brute-force search over raw pairs, returning the best
    /// transformation by coverage together with enumeration counts.
    pub fn discover<S: AsRef<str>, T: AsRef<str>>(&self, raw: &[(S, T)]) -> NaiveResult {
        let pairs: Vec<(CharStr, String)> = raw
            .iter()
            .map(|(s, t)| (CharStr::new(s.as_ref()), t.as_ref().to_owned()))
            .collect();
        if pairs.is_empty() {
            return NaiveResult {
                best: None,
                units_enumerated: 0,
                transformations_evaluated: 0,
            };
        }
        let units = self.enumerate_units(&pairs);
        let mut best: Option<(Transformation, usize)> = None;
        let mut evaluated = 0usize;

        // Compositions of length 1..=max_units, enumerated as a mixed-radix
        // counter over the unit list, bounded by max_transformations.
        'outer: for len in 1..=self.config.max_units {
            let mut indices = vec![0usize; len];
            loop {
                if evaluated >= self.config.max_transformations {
                    break 'outer;
                }
                let t = Transformation::new(indices.iter().map(|&i| units[i].clone()).collect());
                evaluated += 1;
                let coverage = pairs
                    .iter()
                    .filter(|(s, tgt)| t.covers(s, tgt))
                    .count();
                if coverage > 0 && best.as_ref().map(|(_, c)| coverage > *c).unwrap_or(true) {
                    best = Some((t, coverage));
                }
                // Advance.
                let mut pos = len;
                let mut done = true;
                while pos > 0 {
                    pos -= 1;
                    indices[pos] += 1;
                    if indices[pos] < units.len() {
                        done = false;
                        break;
                    }
                    indices[pos] = 0;
                }
                if done {
                    break;
                }
            }
        }

        NaiveResult {
            best,
            units_enumerated: units.len(),
            transformations_evaluated: evaluated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_single_unit_solution_on_tiny_input() {
        let naive = NaiveSynthesis::new(NaiveSynthesisConfig {
            max_units: 1,
            ..NaiveSynthesisConfig::default()
        });
        let rows = vec![("abc,def", "abc"), ("xyz,qrs", "xyz")];
        let result = naive.discover(&rows);
        let (t, coverage) = result.best.expect("a covering transformation");
        assert_eq!(coverage, 2);
        assert_eq!(t.apply("mno,pqr").as_deref(), Some("mno"));
        assert!(result.units_enumerated > 0);
        assert!(result.transformations_evaluated > 0);
    }

    #[test]
    fn enumeration_counts_grow_quickly_even_on_small_inputs() {
        // The same task the placeholder-guided engine handles with a handful
        // of candidates requires orders of magnitude more work here.
        let naive = NaiveSynthesis::new(NaiveSynthesisConfig {
            max_units: 2,
            max_transformations: 50_000,
            ..NaiveSynthesisConfig::default()
        });
        let rows = vec![("ab cd", "cd-ab")];
        let result = naive.discover(&rows);
        assert!(result.transformations_evaluated >= 50_000 || result.best.is_some());
        assert!(result.units_enumerated > 50);
    }

    #[test]
    fn empty_input() {
        let naive = NaiveSynthesis::default();
        let result = naive.discover::<&str, &str>(&[]);
        assert!(result.best.is_none());
        assert_eq!(result.units_enumerated, 0);
    }

    #[test]
    fn respects_caps() {
        let naive = NaiveSynthesis::new(NaiveSynthesisConfig {
            max_units: 3,
            max_single_units: 100,
            max_transformations: 1000,
            ..NaiveSynthesisConfig::default()
        });
        let rows = vec![("abcdefgh ijklmnop", "ijklmnop abcdefgh")];
        let result = naive.discover(&rows);
        assert!(result.units_enumerated <= 100);
        assert!(result.transformations_evaluated <= 1000);
    }

    #[test]
    #[should_panic]
    fn zero_units_rejected() {
        let _ = NaiveSynthesis::new(NaiveSynthesisConfig {
            max_units: 0,
            ..NaiveSynthesisConfig::default()
        });
    }
}
