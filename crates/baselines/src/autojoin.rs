//! The Auto-Join baseline (Zhu et al., VLDB 2017), as described in Section
//! 3.2 of the paper.
//!
//! Auto-Join samples small subsets of the input pairs and, for each subset,
//! searches for a single transformation covering *every* pair in the subset:
//!
//! 1. enumerate every unit with every parameter assignment (a blind sweep of
//!    the parameter space — the expensive part the paper's approach avoids);
//! 2. keep the units whose output appears in every remaining target and rank
//!    them by the average length of target text they cover;
//! 3. take the best unit, split every target into the text left and right of
//!    the match, and recurse on both sides;
//! 4. backtrack to the next-ranked unit when a branch fails.
//!
//! The transformations found across all subsets form the final set (Auto-Join
//! does not compute a minimal cover). A configurable wall-clock budget plays
//! the role of the paper's 650 000-second cap: when the budget is exhausted
//! the search stops and reports what it found so far.

use std::time::{Duration, Instant};
use tjoin_core::pair::PairSet;
use tjoin_text::{FxHashSet, NormalizeOptions};
use tjoin_units::{CharStr, CoveredTransformation, Transformation, TransformationSet, Unit, UnitKind};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration of the Auto-Join baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoJoinConfig {
    /// Number of subsets sampled (the paper's experiments use 6).
    pub subset_count: usize,
    /// Rows per subset (the paper's experiments use 2).
    pub subset_size: usize,
    /// Maximum recursion depth (number of non-literal units in a
    /// transformation; 3 in the paper's experiments, 4 on spreadsheet data).
    pub max_depth: usize,
    /// Unit kinds enumerated in the blind sweep. Auto-Join's own set includes
    /// `SplitSplitSubstr`.
    pub unit_kinds: Vec<UnitKind>,
    /// Wall-clock budget for the whole run; the search stops (reporting
    /// partial results) once it is exhausted.
    pub time_budget: Duration,
    /// Seed for subset sampling.
    pub seed: u64,
    /// Cap on candidate units considered per recursion step (ranked by score
    /// before truncation), keeping the baseline runnable on long rows.
    pub max_candidates_per_step: usize,
    /// Normalization applied to both columns before the search.
    pub normalize: NormalizeOptions,
}

impl Default for AutoJoinConfig {
    fn default() -> Self {
        Self {
            subset_count: 6,
            subset_size: 2,
            max_depth: 3,
            unit_kinds: vec![
                UnitKind::Substr,
                UnitKind::Split,
                UnitKind::SplitSubstr,
                UnitKind::SplitSplitSubstr,
            ],
            time_budget: Duration::from_secs(60),
            seed: 0,
            max_candidates_per_step: 4096,
            normalize: NormalizeOptions::default(),
        }
    }
}

/// Result of an Auto-Join run.
#[derive(Debug, Clone)]
pub struct AutoJoinResult {
    /// Transformations found (one per successful subset, deduplicated).
    pub transformations: Vec<Transformation>,
    /// Subsets attempted.
    pub subsets_tried: usize,
    /// Subsets for which a covering transformation was found.
    pub subsets_succeeded: usize,
    /// Unit/parameter combinations applied during the search (the cost the
    /// paper's placeholder guidance avoids).
    pub units_enumerated: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Whether the time budget expired before all subsets were processed.
    pub timed_out: bool,
}

impl AutoJoinResult {
    /// Evaluates the found transformations over a pair list, producing the
    /// same [`TransformationSet`] shape the paper's Table 2 reports for
    /// Auto-Join ("we took all those transformations returned by auto-join").
    pub fn evaluate<S: AsRef<str>, T: AsRef<str>>(
        &self,
        pairs: &[(S, T)],
        normalize: &NormalizeOptions,
    ) -> TransformationSet {
        let set = PairSet::from_strings(pairs, normalize);
        let coverage =
            tjoin_core::coverage::compute_coverage(&self.transformations, &set, true, 1);
        let transformations = self
            .transformations
            .iter()
            .zip(coverage.covered_rows)
            .map(|(t, rows)| CoveredTransformation {
                transformation: t.clone(),
                covered_rows: rows,
            })
            .collect();
        TransformationSet {
            transformations,
            total_pairs: set.len(),
        }
    }
}

/// The Auto-Join baseline synthesizer.
#[derive(Debug, Clone, Default)]
pub struct AutoJoin {
    config: AutoJoinConfig,
}

struct SearchState {
    deadline: Instant,
    units_enumerated: u64,
    timed_out: bool,
    max_candidates: usize,
    unit_kinds: Vec<UnitKind>,
}

impl AutoJoin {
    /// Creates the baseline with the given configuration.
    pub fn new(config: AutoJoinConfig) -> Self {
        assert!(config.subset_count >= 1);
        assert!(config.subset_size >= 1);
        assert!(config.max_depth >= 1);
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AutoJoinConfig {
        &self.config
    }

    /// Runs Auto-Join over raw (source, target) pairs.
    pub fn discover<S: AsRef<str>, T: AsRef<str>>(&self, raw: &[(S, T)]) -> AutoJoinResult {
        let start = Instant::now();
        let pairs: Vec<(CharStr, String)> = raw
            .iter()
            .map(|(s, t)| {
                (
                    CharStr::new(tjoin_text::normalize_for_matching(
                        s.as_ref(),
                        &self.config.normalize,
                    )),
                    tjoin_text::normalize_for_matching(t.as_ref(), &self.config.normalize),
                )
            })
            .collect();

        let mut state = SearchState {
            deadline: start + self.config.time_budget,
            units_enumerated: 0,
            timed_out: false,
            max_candidates: self.config.max_candidates_per_step,
            unit_kinds: self.config.unit_kinds.clone(),
        };

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut found: Vec<Transformation> = Vec::new();
        let mut seen: FxHashSet<Transformation> = FxHashSet::default();
        let mut subsets_tried = 0usize;
        let mut subsets_succeeded = 0usize;

        if !pairs.is_empty() {
            for _ in 0..self.config.subset_count {
                if Instant::now() >= state.deadline {
                    state.timed_out = true;
                    break;
                }
                subsets_tried += 1;
                let mut indices: Vec<usize> = (0..pairs.len()).collect();
                indices.shuffle(&mut rng);
                indices.truncate(self.config.subset_size.min(pairs.len()));
                let subset: Vec<(&CharStr, &str)> = indices
                    .iter()
                    .map(|&i| (&pairs[i].0, pairs[i].1.as_str()))
                    .collect();
                if let Some(units) = solve(&subset, self.config.max_depth, &mut state) {
                    let t = Transformation::new(units);
                    // The search guarantees subset coverage; double-check.
                    debug_assert!(subset.iter().all(|(s, tgt)| t.covers(s, tgt)));
                    subsets_succeeded += 1;
                    if seen.insert(t.clone()) {
                        found.push(t);
                    }
                }
            }
        }

        AutoJoinResult {
            transformations: found,
            subsets_tried,
            subsets_succeeded,
            units_enumerated: state.units_enumerated,
            elapsed: start.elapsed(),
            timed_out: state.timed_out,
        }
    }
}

/// Recursively builds a unit sequence whose concatenated output equals every
/// remaining target in `rows`.
fn solve(
    rows: &[(&CharStr, &str)],
    depth: usize,
    state: &mut SearchState,
) -> Option<Vec<Unit>> {
    if Instant::now() >= state.deadline {
        state.timed_out = true;
        return None;
    }
    // Base case: nothing left to produce on any row.
    if rows.iter().all(|(_, t)| t.is_empty()) {
        return Some(Vec::new());
    }
    // Base case: every remaining target is the same non-empty string — a
    // literal covers it.
    let first_target = rows[0].1;
    if !first_target.is_empty() && rows.iter().all(|(_, t)| *t == first_target) {
        return Some(vec![Unit::literal(first_target)]);
    }
    if depth == 0 {
        return None;
    }

    // Blind enumeration of candidate units, scored by the average length of
    // target text they cover; backtracking over the ranked list.
    let candidates = ranked_candidates(rows, state);
    for unit in candidates {
        // Split every target around the unit's output.
        let mut lefts: Vec<(&CharStr, &str)> = Vec::with_capacity(rows.len());
        let mut rights: Vec<(&CharStr, &str)> = Vec::with_capacity(rows.len());
        let mut ok = true;
        for (src, tgt) in rows {
            let out = match unit.output_on(src) {
                Some(o) if !o.is_empty() => o.into_owned(),
                _ => {
                    ok = false;
                    break;
                }
            };
            match tgt.find(&out) {
                Some(pos) => {
                    lefts.push((src, &tgt[..pos]));
                    rights.push((src, &tgt[pos + out.len()..]));
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let Some(left_units) = solve(&lefts, depth - 1, state) else {
            continue;
        };
        let Some(right_units) = solve(&rights, depth - 1, state) else {
            continue;
        };
        let mut units = left_units;
        units.push(unit);
        units.extend(right_units);
        return Some(units);
    }
    None
}

/// Enumerates every unit/parameter combination (bounded by the configuration
/// caps), keeps those whose output occurs in every remaining target, and
/// ranks them by the average covered target length (descending).
fn ranked_candidates(rows: &[(&CharStr, &str)], state: &mut SearchState) -> Vec<Unit> {
    let max_src_len = rows.iter().map(|(s, _)| s.char_len()).max().unwrap_or(0);
    let mut alphabet: FxHashSet<char> = FxHashSet::default();
    for (s, _) in rows {
        alphabet.extend(s.chars());
    }
    let mut alphabet: Vec<char> = alphabet.into_iter().collect();
    alphabet.sort_unstable();

    let mut scored: Vec<(f64, Unit)> = Vec::new();
    let consider = |unit: Unit, state: &mut SearchState, scored: &mut Vec<(f64, Unit)>| {
        state.units_enumerated += 1;
        let mut total_len = 0usize;
        for (src, tgt) in rows {
            match unit.output_on(src) {
                Some(out) if !out.is_empty() && tgt.contains(out.as_ref()) => {
                    total_len += out.chars().count();
                }
                _ => return,
            }
        }
        scored.push((total_len as f64 / rows.len() as f64, unit));
    };

    if state.unit_kinds.contains(&UnitKind::Substr) {
        for s in 0..max_src_len {
            for e in (s + 1)..=max_src_len {
                consider(Unit::substr(s, e), state, &mut scored);
            }
        }
    }
    if state.unit_kinds.contains(&UnitKind::Split) {
        for &c in &alphabet {
            for i in 0..max_src_len.min(20) {
                consider(Unit::split(c, i), state, &mut scored);
            }
        }
    }
    if state.unit_kinds.contains(&UnitKind::SplitSubstr) {
        for &c in &alphabet {
            for i in 0..max_src_len.min(12) {
                for s in 0..max_src_len.min(24) {
                    for e in (s + 1)..=max_src_len.min(24) {
                        consider(Unit::split_substr(c, i, s, e), state, &mut scored);
                    }
                }
            }
        }
    }
    if state.unit_kinds.contains(&UnitKind::SplitSplitSubstr) {
        // The nested split has six parameters; the sweep is restricted to
        // separator-like delimiters and small indexes to remain finite.
        let separators: Vec<char> = alphabet
            .iter()
            .copied()
            .filter(|c| tjoin_text::is_separator_char(*c))
            .collect();
        for &c1 in &separators {
            for &c2 in &separators {
                for i1 in 0..4usize {
                    for i2 in 0..4usize {
                        for s in 0..max_src_len.min(12) {
                            for e in (s + 1)..=max_src_len.min(12) {
                                consider(
                                    Unit::split_split_substr(c1, i1, c2, i2, s, e),
                                    state,
                                    &mut scored,
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    // Literal candidates: substrings of the shortest remaining target that
    // occur in every target.
    if let Some((_, shortest)) = rows.iter().min_by_key(|(_, t)| t.chars().count()) {
        let chars: Vec<char> = shortest.chars().collect();
        for i in 0..chars.len() {
            for j in (i + 1)..=chars.len().min(i + 10) {
                let lit: String = chars[i..j].iter().collect();
                if rows.iter().all(|(_, t)| t.contains(&lit)) {
                    state.units_enumerated += 1;
                    scored.push((lit.chars().count() as f64, Unit::literal(lit)));
                }
            }
        }
    }

    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    scored.truncate(state.max_candidates);
    scored.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> AutoJoinConfig {
        AutoJoinConfig {
            subset_count: 4,
            subset_size: 2,
            time_budget: Duration::from_secs(30),
            ..AutoJoinConfig::default()
        }
    }

    #[test]
    fn discovers_single_rule_on_uniform_rows() {
        let rows = vec![
            ("Rafiei, Davood", "D Rafiei"),
            ("Bowling, Michael", "M Bowling"),
            ("Gosgnach, Simon", "S Gosgnach"),
            ("Gingrich, Douglas", "D Gingrich"),
        ];
        let aj = AutoJoin::new(quick_config());
        let result = aj.discover(&rows);
        assert!(result.subsets_succeeded > 0, "no subset succeeded");
        let set = result.evaluate(&rows, &NormalizeOptions::default());
        assert!(
            (set.set_coverage() - 1.0).abs() < 1e-9,
            "coverage {} with {}",
            set.set_coverage(),
            set
        );
        assert!(result.units_enumerated > 100);
    }

    #[test]
    fn finds_only_subset_consistent_rules_on_mixed_formats() {
        // With two formats mixed 50/50 and subsets of size 2, some subsets
        // straddle both formats and fail — the hallmark Auto-Join behaviour
        // the paper contrasts against.
        let rows = vec![
            ("Rafiei, Davood", "davood.rafiei@x.ca"),
            ("Bowling, Michael", "michael.bowling@x.ca"),
            ("Gingrich, Douglas", "d gingrich"),
            ("Gosgnach, Simon", "s gosgnach"),
        ];
        let aj = AutoJoin::new(AutoJoinConfig {
            subset_count: 8,
            ..quick_config()
        });
        let result = aj.discover(&rows);
        assert!(result.subsets_tried >= result.subsets_succeeded);
        let set = result.evaluate(&rows, &NormalizeOptions::default());
        // Whatever was found covers at most the rows of its own format.
        for t in set.iter() {
            assert!(t.coverage() <= 2, "{}", t.transformation);
        }
    }

    #[test]
    fn time_budget_respected() {
        let rows: Vec<(String, String)> = (0..20)
            .map(|i| {
                (
                    format!("some fairly long source value number {i:04} with words"),
                    format!("{i:04} words value"),
                )
            })
            .collect();
        let aj = AutoJoin::new(AutoJoinConfig {
            time_budget: Duration::from_millis(50),
            subset_count: 50,
            ..AutoJoinConfig::default()
        });
        let start = Instant::now();
        let result = aj.discover(&rows);
        assert!(start.elapsed() < Duration::from_secs(20));
        assert!(result.timed_out || result.subsets_tried <= 50);
    }

    #[test]
    fn empty_input() {
        let aj = AutoJoin::default();
        let result = aj.discover::<&str, &str>(&[]);
        assert!(result.transformations.is_empty());
        assert_eq!(result.subsets_tried, 0);
        let set = result.evaluate::<&str, &str>(&[], &NormalizeOptions::default());
        assert_eq!(set.set_coverage(), 0.0);
    }

    #[test]
    fn solve_handles_literal_only_targets() {
        let src = CharStr::new("whatever");
        let rows = vec![(&src, "constant")];
        let mut state = SearchState {
            deadline: Instant::now() + Duration::from_secs(5),
            units_enumerated: 0,
            timed_out: false,
            max_candidates: 128,
            unit_kinds: vec![UnitKind::Substr],
        };
        let units = solve(&rows, 2, &mut state).expect("literal solution");
        let t = Transformation::new(units);
        assert_eq!(t.apply("whatever").as_deref(), Some("constant"));
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        let _ = AutoJoin::new(AutoJoinConfig {
            subset_count: 0,
            ..AutoJoinConfig::default()
        });
    }
}
