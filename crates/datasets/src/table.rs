//! Table and column-pair types shared across the workspace.

use crate::io::DatasetError;
use serde::{Deserialize, Serialize};
use std::fmt;
use tjoin_text::{CellText, ColumnArena};

/// A named table: a header of column names plus rows of string cells.
///
/// Cells are strings because the problem domain is textual formatting
/// mismatches; numeric columns are carried through verbatim.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table name (used in reports).
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Row-major cells; every row must have `columns.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given name and columns.
    pub fn new(name: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            name: name.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Creates a single-column table from a list of values.
    pub fn single_column(
        name: impl Into<String>,
        column: impl Into<String>,
        values: Vec<String>,
    ) -> Self {
        Self {
            name: name.into(),
            columns: vec![column.into()],
            rows: values.into_iter().map(|v| vec![v]).collect(),
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Index of the column with the given name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The values of column `idx` as a vector of string slices.
    pub fn column(&self, idx: usize) -> Vec<&str> {
        self.rows.iter().map(|r| r[idx].as_str()).collect()
    }

    /// The values of column `idx` cloned into owned strings.
    pub fn column_owned(&self, idx: usize) -> Vec<String> {
        self.rows.iter().map(|r| r[idx].clone()).collect()
    }

    /// The values of column `idx` flattened into a [`ColumnArena`] — the
    /// ingest step of the columnar hot path: the table's cells are copied
    /// once into contiguous storage and everything downstream borrows
    /// slices from it. Columns that exceed the arena's `u32` row/byte
    /// capacity surface as [`DatasetError::Arena`].
    pub fn column_arena(&self, idx: usize) -> Result<ColumnArena, DatasetError> {
        let mut arena = ColumnArena::new();
        for row in &self.rows {
            arena.try_push(&row[idx])?;
        }
        Ok(arena)
    }

    /// Appends a row; panics when the arity does not match.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity {} does not match {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Average character length of the values in column `idx`.
    pub fn average_value_length(&self, idx: usize) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let total: usize = self.rows.iter().map(|r| r[idx].chars().count()).sum();
        total as f64 / self.rows.len() as f64
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} rows)", self.name, self.row_count())?;
        writeln!(f, "  {}", self.columns.join(" | "))?;
        for row in self.rows.iter().take(10) {
            writeln!(f, "  {}", row.join(" | "))?;
        }
        if self.row_count() > 10 {
            writeln!(f, "  ... {} more rows", self.row_count() - 10)?;
        }
        Ok(())
    }
}

/// A pair of tables to be joined, together with the join columns and the
/// golden (ground-truth) row mapping used for evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TablePair {
    /// A short identifier for the pair (e.g. "web-03-governors").
    pub name: String,
    /// The source table (the paper tags the more descriptive column's table
    /// as the source).
    pub source: Table,
    /// The target table.
    pub target: Table,
    /// Index of the join column in the source table.
    pub source_join_column: usize,
    /// Index of the join column in the target table.
    pub target_join_column: usize,
    /// Ground-truth joinable row pairs `(source_row, target_row)`.
    pub golden_pairs: Vec<(u32, u32)>,
}

impl TablePair {
    /// Extracts the join columns and golden mapping as a [`ColumnPair`].
    pub fn column_pair(&self) -> ColumnPair {
        ColumnPair {
            name: self.name.clone(),
            source: self.source.column_owned(self.source_join_column),
            target: self.target.column_owned(self.target_join_column),
            golden: self.golden_pairs.clone(),
        }
    }

    /// Average character length of the two join columns combined (the
    /// "Avg Len." statistic of Table 1 in the paper).
    pub fn average_join_value_length(&self) -> f64 {
        let a = self.source.average_value_length(self.source_join_column);
        let b = self.target.average_value_length(self.target_join_column);
        (a + b) / 2.0
    }
}

/// Converts a row index from `usize` to the `u32` row-id space used by
/// [`ColumnPair`] golden mappings, `RowMatch`es, and predicted join pairs.
///
/// Every cast site in the matcher and join layers routes through this
/// helper so that a column with more than `u32::MAX` rows panics with a
/// clear message instead of silently truncating the index (and, with it,
/// silently mis-joining rows). Columns that large are rejected up front by
/// [`ColumnPair::new`] / [`ColumnPair::assert_row_indexable`]; this is the
/// backstop at the individual cast.
#[inline]
pub fn row_id(index: usize) -> u32 {
    u32::try_from(index).unwrap_or_else(|_| {
        panic!("row index {index} exceeds the u32 row-id space (max {})", u32::MAX)
    })
}

/// The join columns of a table pair plus the golden row mapping: the unit of
/// work for row matching, transformation discovery, and evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnPair {
    /// Identifier (usually inherited from the table pair).
    pub name: String,
    /// Source column values.
    pub source: Vec<String>,
    /// Target column values.
    pub target: Vec<String>,
    /// Ground-truth joinable row pairs `(source_row, target_row)`.
    pub golden: Vec<(u32, u32)>,
}

impl ColumnPair {
    /// Checked constructor: builds a column pair after verifying both
    /// columns fit the `u32` row-id space (golden mappings, `RowMatch`es,
    /// and predicted join pairs all index rows as `u32`). Columns with more
    /// than `u32::MAX` rows panic here, up front, instead of silently
    /// truncating indices deep inside the matcher or join.
    pub fn new(
        name: impl Into<String>,
        source: Vec<String>,
        target: Vec<String>,
        golden: Vec<(u32, u32)>,
    ) -> Self {
        let pair = Self {
            name: name.into(),
            source,
            target,
            golden,
        };
        pair.assert_row_indexable();
        pair
    }

    /// Panics with a clear message when either column has more rows than
    /// the `u32` row-id space can address. Called by [`ColumnPair::new`]
    /// and by the matcher/join entry points (the fields are public, so a
    /// pair built with a struct literal bypasses the constructor check).
    pub fn assert_row_indexable(&self) {
        assert!(
            self.source.len() <= u32::MAX as usize,
            "source column of {:?} has {} rows, exceeding the u32 row-id space",
            self.name,
            self.source.len()
        );
        assert!(
            self.target.len() <= u32::MAX as usize,
            "target column of {:?} has {} rows, exceeding the u32 row-id space",
            self.name,
            self.target.len()
        );
    }

    /// Creates a column pair where row `i` of the source joins row `i` of the
    /// target (the common case for generated data).
    pub fn aligned(
        name: impl Into<String>,
        source: Vec<String>,
        target: Vec<String>,
    ) -> Self {
        assert_eq!(source.len(), target.len(), "aligned pair requires equal length");
        let golden = (0..source.len()).map(|i| (row_id(i), row_id(i))).collect();
        Self::new(name, source, target, golden)
    }

    /// Number of source rows.
    pub fn source_len(&self) -> usize {
        self.source.len()
    }

    /// Number of target rows.
    pub fn target_len(&self) -> usize {
        self.target.len()
    }

    /// The golden pairs materialized as `(source_value, target_value)`.
    pub fn golden_values(&self) -> Vec<(&str, &str)> {
        self.golden
            .iter()
            .map(|&(s, t)| (self.source[s as usize].as_str(), self.target[t as usize].as_str()))
            .collect()
    }

    /// Average character length across both columns.
    pub fn average_value_length(&self) -> f64 {
        let n = self.source.len() + self.target.len();
        if n == 0 {
            return 0.0;
        }
        let total: usize = self
            .source
            .iter()
            .chain(self.target.iter())
            .map(|v| v.chars().count())
            .sum();
        total as f64 / n as f64
    }

    /// Materializes both columns into [`ColumnArena`]s (the columnar hot
    /// path's ingest step), preserving the golden mapping. Cell contents are
    /// identical, so the arena pair interns to the same corpus entries as
    /// this pair and the matcher produces bit-identical output on either.
    pub fn to_arena(&self) -> Result<ArenaPair, DatasetError> {
        Ok(ArenaPair {
            name: self.name.clone(),
            source: ColumnArena::try_from_cells(self.source.as_slice())?,
            target: ColumnArena::try_from_cells(self.target.as_slice())?,
            golden: self.golden.clone(),
        })
    }
}

/// A [`ColumnPair`] with both columns flattened into [`ColumnArena`]s — the
/// columnar representation the matcher and join layers scan without cloning
/// cells. Built at ingest via [`ColumnPair::to_arena`] (or directly from
/// [`Table::column_arena`] columns); arena construction enforces the `u32`
/// row-id space, so no separate `assert_row_indexable` is needed.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArenaPair {
    /// Identifier (usually inherited from the column pair).
    pub name: String,
    /// Source column values in arena storage.
    pub source: ColumnArena,
    /// Target column values in arena storage.
    pub target: ColumnArena,
    /// Ground-truth joinable row pairs `(source_row, target_row)`.
    pub golden: Vec<(u32, u32)>,
}

impl ArenaPair {
    /// Number of source rows.
    pub fn source_len(&self) -> usize {
        self.source.len()
    }

    /// Number of target rows.
    pub fn target_len(&self) -> usize {
        self.target.len()
    }

    /// Clones the arena cells back into a `Vec<String>`-backed
    /// [`ColumnPair`] (the reference representation the differential suites
    /// compare against).
    pub fn to_column_pair(&self) -> ColumnPair {
        ColumnPair {
            name: self.name.clone(),
            source: self.source.cells().map(str::to_owned).collect(),
            target: self.target.cells().map(str::to_owned).collect(),
            golden: self.golden.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("staff", vec!["Name".into(), "Dept".into()]);
        t.push_row(vec!["Rafiei, Davood".into(), "CS".into()]);
        t.push_row(vec!["Bowling, Michael".into(), "CS".into()]);
        t
    }

    #[test]
    fn table_accessors() {
        let t = sample_table();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.column_count(), 2);
        assert_eq!(t.column_index("Dept"), Some(1));
        assert_eq!(t.column_index("Phone"), None);
        assert_eq!(t.column(0), vec!["Rafiei, Davood", "Bowling, Michael"]);
        assert_eq!(t.column_owned(1), vec!["CS".to_owned(), "CS".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn push_row_arity_checked() {
        let mut t = sample_table();
        t.push_row(vec!["only-one-cell".into()]);
    }

    #[test]
    fn average_length() {
        let t = Table::single_column("x", "c", vec!["ab".into(), "abcd".into()]);
        assert!((t.average_value_length(0) - 3.0).abs() < 1e-12);
        let empty = Table::new("e", vec!["c".into()]);
        assert_eq!(empty.average_value_length(0), 0.0);
    }

    #[test]
    fn single_column_constructor() {
        let t = Table::single_column("emails", "Email", vec!["a@x".into()]);
        assert_eq!(t.column_count(), 1);
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn display_truncates() {
        let mut t = Table::new("big", vec!["c".into()]);
        for i in 0..15 {
            t.push_row(vec![format!("row{i}")]);
        }
        let s = t.to_string();
        assert!(s.contains("... 5 more rows"));
    }

    #[test]
    fn table_pair_column_extraction() {
        let source = sample_table();
        let target = Table::single_column(
            "phones",
            "Name",
            vec!["D Rafiei".into(), "M Bowling".into()],
        );
        let pair = TablePair {
            name: "staff-phones".into(),
            source,
            target,
            source_join_column: 0,
            target_join_column: 0,
            golden_pairs: vec![(0, 0), (1, 1)],
        };
        let cp = pair.column_pair();
        assert_eq!(cp.source_len(), 2);
        assert_eq!(cp.target_len(), 2);
        assert_eq!(cp.golden_values()[0], ("Rafiei, Davood", "D Rafiei"));
        assert!(pair.average_join_value_length() > 0.0);
    }

    #[test]
    fn aligned_column_pair() {
        let cp = ColumnPair::aligned("x", vec!["a".into(), "b".into()], vec!["A".into(), "B".into()]);
        assert_eq!(cp.golden, vec![(0, 0), (1, 1)]);
        assert!((cp.average_value_length() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn aligned_requires_equal_length() {
        let _ = ColumnPair::aligned("x", vec!["a".into()], vec![]);
    }

    #[test]
    fn empty_column_pair_stats() {
        let cp = ColumnPair::default();
        assert_eq!(cp.average_value_length(), 0.0);
        assert_eq!(cp.source_len(), 0);
    }

    #[test]
    fn row_id_roundtrips_in_range() {
        assert_eq!(row_id(0), 0);
        assert_eq!(row_id(12_345), 12_345);
        assert_eq!(row_id(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 row-id space")]
    fn row_id_rejects_truncating_indices() {
        // No allocation needed: the helper takes the index, not a column.
        let _ = row_id(u32::MAX as usize + 1);
    }

    #[test]
    fn table_column_arena_matches_column_owned() {
        let t = sample_table();
        let arena = t.column_arena(0).unwrap();
        let owned = t.column_owned(0);
        assert_eq!(arena.len(), owned.len());
        for (row, cell) in owned.iter().enumerate() {
            assert_eq!(arena.cell(row), cell, "row {row}");
        }
    }

    #[test]
    fn arena_pair_roundtrips_column_pair() {
        let cp = ColumnPair::aligned(
            "round",
            vec!["Rafiei, Davood".into(), "αβγ".into(), String::new()],
            vec!["D Rafiei".into(), "γβα".into(), "x".into()],
        );
        let ap = cp.to_arena().unwrap();
        assert_eq!(ap.name, cp.name);
        assert_eq!(ap.source_len(), cp.source_len());
        assert_eq!(ap.target_len(), cp.target_len());
        assert_eq!(ap.golden, cp.golden);
        assert_eq!(ap.to_column_pair(), cp);
    }

    #[test]
    fn checked_constructor_accepts_normal_columns() {
        let cp = ColumnPair::new(
            "ok",
            vec!["a".into()],
            vec!["A".into(), "A2".into()],
            vec![(0, 0), (0, 1)],
        );
        cp.assert_row_indexable();
        assert_eq!(cp.target_len(), 2);
    }
}
