//! Small embedded word lists used by the simulated real-world benchmark
//! generators.
//!
//! The lists are intentionally modest (dozens of entries each); the
//! generators combine them combinatorially, so even small lists yield
//! thousands of distinct realistic values (names, departments, streets,
//! cities) without shipping any external data.

/// Common given names.
pub const FIRST_NAMES: &[&str] = &[
    "Davood", "Mario", "Douglas", "Andrzej", "Michael", "Simon", "Sarah", "Emily", "James",
    "Robert", "Linda", "Patricia", "Jennifer", "Elizabeth", "William", "David", "Richard",
    "Joseph", "Thomas", "Charles", "Christopher", "Daniel", "Matthew", "Anthony", "Donald",
    "Mark", "Paul", "Steven", "Andrew", "Kenneth", "Joshua", "Kevin", "Brian", "George",
    "Timothy", "Ronald", "Edward", "Jason", "Jeffrey", "Ryan", "Jacob", "Gary", "Nicholas",
    "Eric", "Jonathan", "Stephen", "Larry", "Justin", "Scott", "Brandon", "Benjamin", "Samuel",
    "Gregory", "Alexander", "Patrick", "Frank", "Raymond", "Jack", "Dennis", "Jerry", "Tyler",
    "Aaron", "Jose", "Adam", "Nathan", "Henry", "Zachary", "Douglas", "Peter", "Kyle", "Noah",
    "Ethan", "Jeremy", "Walter", "Christian", "Keith", "Roger", "Terry", "Austin", "Sean",
    "Gerald", "Carl", "Harold", "Dylan", "Arthur", "Lawrence", "Jordan", "Jesse", "Bryan",
    "Mary", "Susan", "Karen", "Nancy", "Lisa", "Betty", "Margaret", "Sandra", "Ashley",
    "Kimberly", "Donna", "Carol", "Michelle", "Dorothy", "Amanda", "Melissa", "Deborah",
];

/// Common family names.
pub const LAST_NAMES: &[&str] = &[
    "Rafiei", "Nascimento", "Gingrich", "Prus-Czarnecki", "Bowling", "Gosgnach", "Smith",
    "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez",
    "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Thomas", "Taylor",
    "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
    "Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King", "Wright",
    "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green", "Adams", "Nelson", "Baker",
    "Hall", "Rivera", "Campbell", "Mitchell", "Carter", "Roberts", "Gomez", "Phillips",
    "Evans", "Turner", "Diaz", "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart",
    "Morris", "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan", "Cooper",
    "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos", "Kim", "Cox", "Ward",
    "Richardson", "Watson", "Brooks", "Chavez", "Wood", "James", "Bennett", "Gray", "Mendoza",
    "Ruiz", "Hughes", "Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long",
];

/// University-style departments with a founding year used by the web-tables
/// generator ("CS (2000)" style values).
pub const DEPARTMENTS: &[&str] = &[
    "CS", "Physics", "Physiology", "Mathematics", "Chemistry", "Biology", "History",
    "Philosophy", "Economics", "Psychology", "Linguistics", "Sociology", "Statistics",
    "Anthropology", "Geography", "Music", "Drama", "English", "Nursing", "Law",
];

/// Street names for the open-data (address) generator. Kept deliberately
/// small so that many addresses share street tokens and the n-gram matcher
/// sees the low-precision regime the paper reports for Open data.
pub const STREETS: &[&str] = &[
    "124 STREET", "JASPER AVENUE", "WHYTE AVENUE", "104 AVENUE", "109 STREET", "GATEWAY BOULEVARD",
    "CALGARY TRAIL", "STONY PLAIN ROAD", "KINGSWAY", "FORT ROAD", "111 AVENUE", "97 STREET",
    "SASKATCHEWAN DRIVE", "TERWILLEGAR DRIVE", "ELLERSLIE ROAD", "RABBIT HILL ROAD",
];

/// Street quadrant suffixes.
pub const QUADRANTS: &[&str] = &["NW", "SW", "NE", "SE"];

/// Cities for contextual columns.
pub const CITIES: &[&str] = &[
    "Edmonton", "Calgary", "Vancouver", "Toronto", "Montreal", "Ottawa", "Winnipeg", "Halifax",
    "Victoria", "Saskatoon", "Regina", "Quebec City", "Hamilton", "Kitchener", "London",
];

/// US states with their postal abbreviations (used by governor/state topics
/// in the simulated web-tables benchmark).
pub const STATES: &[(&str, &str)] = &[
    ("California", "CA"),
    ("Texas", "TX"),
    ("New York", "NY"),
    ("Florida", "FL"),
    ("Illinois", "IL"),
    ("Pennsylvania", "PA"),
    ("Ohio", "OH"),
    ("Georgia", "GA"),
    ("Michigan", "MI"),
    ("North Carolina", "NC"),
    ("New Jersey", "NJ"),
    ("Virginia", "VA"),
    ("Washington", "WA"),
    ("Arizona", "AZ"),
    ("Massachusetts", "MA"),
    ("Tennessee", "TN"),
    ("Indiana", "IN"),
    ("Missouri", "MO"),
    ("Maryland", "MD"),
    ("Wisconsin", "WI"),
    ("Colorado", "CO"),
    ("Minnesota", "MN"),
    ("South Carolina", "SC"),
    ("Alabama", "AL"),
    ("Louisiana", "LA"),
    ("Kentucky", "KY"),
    ("Oregon", "OR"),
    ("Oklahoma", "OK"),
    ("Connecticut", "CT"),
    ("Utah", "UT"),
    ("Iowa", "IA"),
    ("Nevada", "NV"),
];

/// Months, for date-format topics.
pub const MONTHS: &[&str] = &[
    "January", "February", "March", "April", "May", "June", "July", "August", "September",
    "October", "November", "December",
];

/// Company-style suffixes for business listings.
pub const COMPANY_SUFFIXES: &[&str] = &["Inc", "Ltd", "LLC", "Corp", "Co", "Group", "Holdings"];

/// Business base names.
pub const BUSINESS_NAMES: &[&str] = &[
    "Prairie Coffee", "Northern Lights Dental", "River Valley Auto", "Aurora Books",
    "Glacier Plumbing", "Summit Physio", "Capital Electric", "Maple Leaf Bakery",
    "Foothills Optometry", "Whitemud Veterinary", "Oliver Barbers", "Strathcona Cycles",
    "Garneau Cleaners", "Bonnie Doon Florist", "Mill Creek Yoga", "Hazeldean Hardware",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_are_nonempty_and_reasonably_sized() {
        assert!(FIRST_NAMES.len() >= 50);
        assert!(LAST_NAMES.len() >= 50);
        assert!(DEPARTMENTS.len() >= 10);
        assert!(STREETS.len() >= 10);
        assert_eq!(QUADRANTS.len(), 4);
        assert!(STATES.len() >= 30);
        assert_eq!(MONTHS.len(), 12);
    }

    #[test]
    fn no_empty_entries() {
        for s in FIRST_NAMES.iter().chain(LAST_NAMES).chain(DEPARTMENTS).chain(STREETS) {
            assert!(!s.is_empty());
        }
        for (name, abbr) in STATES {
            assert!(!name.is_empty());
            assert_eq!(abbr.len(), 2);
        }
    }
}
