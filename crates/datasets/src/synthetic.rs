//! Synthetic benchmark generator (Section 6.1 of the paper).
//!
//! The generator creates a source table of random alphanumeric strings, draws
//! a small set of ground-truth transformations, and applies a randomly chosen
//! one to every source row to produce the target table. `Synth-N` uses source
//! lengths in `[20, 35]`, `Synth-NL` uses `[40, 70]`; each ground-truth
//! transformation has `p = 2` placeholders and 1–2 literal blocks of length
//! 1–5, and 3 transformations cover each table, matching the parameters the
//! paper reports.

use crate::table::{ColumnPair, Table, TablePair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tjoin_units::{Transformation, Unit};

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntheticConfig {
    /// Number of rows in each table.
    pub rows: usize,
    /// Inclusive range of source string lengths (characters).
    pub source_len: (usize, usize),
    /// Number of ground-truth transformations covering the table (paper: 3).
    pub transformations: usize,
    /// Placeholders (non-constant units) per transformation (paper: 2).
    pub placeholders_per_transformation: usize,
    /// Inclusive range of the number of literal blocks per transformation
    /// (paper: 1–2).
    pub literals_per_transformation: (usize, usize),
    /// Inclusive range of literal block lengths (paper: 1–5).
    pub literal_len: (usize, usize),
}

impl SyntheticConfig {
    /// `Synth-N`: `rows` rows, source lengths 20–35 (paper Section 6.1).
    pub fn synth(rows: usize) -> Self {
        Self {
            rows,
            source_len: (20, 35),
            transformations: 3,
            placeholders_per_transformation: 2,
            literals_per_transformation: (1, 2),
            literal_len: (1, 5),
        }
    }

    /// `Synth-NL`: `rows` rows, source lengths 40–70.
    pub fn synth_long(rows: usize) -> Self {
        Self {
            source_len: (40, 70),
            ..Self::synth(rows)
        }
    }

    /// A configuration with every source row exactly `len` characters long —
    /// used by the Figure 3 / Figure 4b length sweeps.
    pub fn with_fixed_length(rows: usize, len: usize) -> Self {
        Self {
            rows,
            source_len: (len, len),
            ..Self::synth(rows)
        }
    }

    /// Generates a dataset with the given RNG seed. The same seed always
    /// yields the same dataset.
    pub fn generate(&self, seed: u64) -> SyntheticDataset {
        assert!(self.rows > 0, "need at least one row");
        assert!(self.source_len.0 >= 4, "source strings must have length >= 4");
        assert!(
            self.source_len.0 <= self.source_len.1,
            "source length range must not be inverted"
        );
        assert!(self.placeholders_per_transformation >= 1);
        let mut rng = StdRng::seed_from_u64(seed);

        let sources: Vec<String> = (0..self.rows)
            .map(|_| {
                let len = rng.gen_range(self.source_len.0..=self.source_len.1);
                random_alphanumeric(&mut rng, len)
            })
            .collect();

        let min_len = self.source_len.0;
        let mut transformations = Vec::with_capacity(self.transformations);
        let mut attempts = 0;
        while transformations.len() < self.transformations {
            let t = self.random_transformation(&mut rng, min_len);
            if !transformations.contains(&t) {
                transformations.push(t);
            }
            attempts += 1;
            assert!(
                attempts < 1000,
                "could not draw {} distinct transformations",
                self.transformations
            );
        }

        let mut assignment = Vec::with_capacity(self.rows);
        let mut targets = Vec::with_capacity(self.rows);
        for src in &sources {
            let which = rng.gen_range(0..transformations.len());
            assignment.push(which);
            let out = transformations[which]
                .apply(src)
                .expect("ground-truth transformation must apply to its source");
            targets.push(out);
        }

        let label = format!(
            "synth-{}{}",
            self.rows,
            if self.source_len.0 >= 40 { "L" } else { "" }
        );
        let source_table = Table::single_column(format!("{label}-source"), "value", sources);
        let target_table = Table::single_column(format!("{label}-target"), "value", targets);
        let golden = (0..self.rows as u32).map(|i| (i, i)).collect();
        let pair = TablePair {
            name: label,
            source: source_table,
            target: target_table,
            source_join_column: 0,
            target_join_column: 0,
            golden_pairs: golden,
        };

        SyntheticDataset {
            pair,
            true_transformations: transformations,
            assignment,
        }
    }

    /// Draws one ground-truth transformation valid for every source length
    /// `>= min_len`: placeholders are `Substr` ranges inside `[0, min_len)`
    /// (the paper's synthetic sources are plain alphanumeric strings, so
    /// split-based placeholders would not be applicable) interleaved with
    /// random literal blocks.
    fn random_transformation(&self, rng: &mut StdRng, min_len: usize) -> Transformation {
        let literal_count =
            rng.gen_range(self.literals_per_transformation.0..=self.literals_per_transformation.1);
        let mut placeholders: Vec<Unit> = (0..self.placeholders_per_transformation)
            .map(|_| {
                let start = rng.gen_range(0..min_len - 1);
                let max_span = (min_len - start).min(10);
                let len = rng.gen_range(1..=max_span.max(1));
                Unit::substr(start, start + len)
            })
            .collect();
        let mut literals: Vec<Unit> = (0..literal_count)
            .map(|_| {
                let len = rng.gen_range(self.literal_len.0..=self.literal_len.1);
                Unit::literal(random_literal(rng, len))
            })
            .collect();

        // Interleave: shuffle positions of placeholders and literals.
        let mut units = Vec::with_capacity(placeholders.len() + literals.len());
        while !placeholders.is_empty() || !literals.is_empty() {
            let pick_placeholder = if placeholders.is_empty() {
                false
            } else if literals.is_empty() {
                true
            } else {
                rng.gen_bool(0.5)
            };
            if pick_placeholder {
                units.push(placeholders.remove(0));
            } else {
                units.push(literals.remove(0));
            }
        }
        Transformation::new(units)
    }
}

/// The output of the synthetic generator.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The generated table pair (row `i` of the source joins row `i` of the
    /// target).
    pub pair: TablePair,
    /// The ground-truth transformations used to produce the target column.
    pub true_transformations: Vec<Transformation>,
    /// For each row, the index (into `true_transformations`) of the
    /// transformation that produced its target value.
    pub assignment: Vec<usize>,
}

impl SyntheticDataset {
    /// The join columns as a [`ColumnPair`].
    pub fn column_pair(&self) -> ColumnPair {
        self.pair.column_pair()
    }

    /// The coverage fraction of each ground-truth transformation (how many
    /// rows it was assigned to).
    pub fn true_coverages(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.true_transformations.len()];
        for &a in &self.assignment {
            counts[a] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / self.assignment.len() as f64)
            .collect()
    }
}

/// Random lowercase alphanumeric string of `len` characters.
fn random_alphanumeric(rng: &mut StdRng, len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

/// Random literal block: letters plus common separator characters so that
/// generated targets contain realistic punctuation for the engine to anchor
/// on.
fn random_literal(rng: &mut StdRng, len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz-._ @";
    (0..len.max(1))
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = SyntheticConfig::synth(20).generate(7);
        let b = SyntheticConfig::synth(20).generate(7);
        assert_eq!(a.pair, b.pair);
        assert_eq!(a.true_transformations, b.true_transformations);
        let c = SyntheticConfig::synth(20).generate(8);
        assert_ne!(a.pair, c.pair);
    }

    #[test]
    fn row_counts_and_lengths_follow_config() {
        let d = SyntheticConfig::synth(50).generate(1);
        let cp = d.column_pair();
        assert_eq!(cp.source_len(), 50);
        assert_eq!(cp.target_len(), 50);
        for s in &cp.source {
            let l = s.chars().count();
            assert!((20..=35).contains(&l), "length {l} out of range");
        }
        let d = SyntheticConfig::synth_long(10).generate(1);
        for s in &d.column_pair().source {
            let l = s.chars().count();
            assert!((40..=70).contains(&l));
        }
    }

    #[test]
    fn fixed_length_config() {
        let d = SyntheticConfig::with_fixed_length(10, 60).generate(3);
        for s in &d.column_pair().source {
            assert_eq!(s.chars().count(), 60);
        }
    }

    #[test]
    fn ground_truth_transformations_cover_their_rows() {
        let d = SyntheticConfig::synth(100).generate(42);
        let cp = d.column_pair();
        for (i, (src, tgt)) in cp.source.iter().zip(cp.target.iter()).enumerate() {
            let t = &d.true_transformations[d.assignment[i]];
            assert_eq!(t.apply(src).as_deref(), Some(tgt.as_str()));
        }
    }

    #[test]
    fn three_distinct_transformations() {
        let d = SyntheticConfig::synth(30).generate(11);
        assert_eq!(d.true_transformations.len(), 3);
        assert_ne!(d.true_transformations[0], d.true_transformations[1]);
        assert_ne!(d.true_transformations[1], d.true_transformations[2]);
        for t in &d.true_transformations {
            assert_eq!(t.placeholder_count(), 2);
            let lits = t.literal_count();
            assert!((1..=2).contains(&lits));
        }
    }

    #[test]
    fn coverages_sum_to_one() {
        let d = SyntheticConfig::synth(200).generate(5);
        let total: f64 = d.true_coverages().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // With 200 rows and 3 transformations, each should be used at least once.
        assert!(d.true_coverages().iter().all(|&c| c > 0.0));
    }

    #[test]
    fn golden_pairs_are_aligned() {
        let d = SyntheticConfig::synth(10).generate(2);
        assert_eq!(d.pair.golden_pairs.len(), 10);
        assert!(d.pair.golden_pairs.iter().all(|&(s, t)| s == t));
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_rejected() {
        let _ = SyntheticConfig::synth(0).generate(1);
    }
}
