//! Minimal CSV/TSV reading and writing for [`Table`]s.
//!
//! The workspace keeps to the approved offline dependency set, so this is a
//! small RFC-4180-style implementation (quoted fields, embedded quotes
//! doubled, embedded newlines inside quotes) rather than a `csv` crate
//! dependency. It is sufficient for loading user-provided table pairs into
//! the join pipeline and for persisting experiment outputs.
//!
//! All loaders are total over malformed input: truncated files, ragged
//! rows, unterminated quotes, and non-UTF-8 bytes surface as typed
//! [`DatasetError`] variants rather than panics, so a batch driver can
//! degrade the affected table instead of dying.

use crate::table::Table;
use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A typed dataset loading failure: what was malformed, with enough
/// structure for callers to report (or skip) the offending input.
#[derive(Debug)]
pub enum DatasetError {
    /// The underlying file read failed.
    Io(io::Error),
    /// The file's bytes are not valid UTF-8.
    InvalidUtf8 {
        /// Byte offset of the first invalid sequence.
        valid_up_to: usize,
    },
    /// The input contains no records at all (not even a header).
    Empty,
    /// A record's field count disagrees with the header's.
    RaggedRecord {
        /// 1-based record number (the header is record 1).
        record: usize,
        /// Fields found in the record.
        found: usize,
        /// Fields the header promised.
        expected: usize,
    },
    /// A quoted field was never closed before the input ended (the
    /// truncated-file shape).
    UnterminatedQuote,
    /// A column could not be materialized into a [`tjoin_text::ColumnArena`]
    /// (it exceeds the `u32` row-id or byte-offset space).
    Arena(tjoin_text::ArenaError),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Io(e) => write!(f, "dataset read failed: {e}"),
            DatasetError::InvalidUtf8 { valid_up_to } => {
                write!(f, "dataset is not valid UTF-8 (first invalid byte at offset {valid_up_to})")
            }
            DatasetError::Empty => write!(f, "empty input"),
            DatasetError::RaggedRecord { record, found, expected } => {
                write!(f, "record {record} has {found} fields, expected {expected}")
            }
            DatasetError::UnterminatedQuote => write!(f, "unterminated quoted field"),
            DatasetError::Arena(e) => write!(f, "column does not fit arena storage: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DatasetError {
    fn from(e: io::Error) -> Self {
        DatasetError::Io(e)
    }
}

impl From<tjoin_text::ArenaError> for DatasetError {
    fn from(e: tjoin_text::ArenaError) -> Self {
        DatasetError::Arena(e)
    }
}

/// Parses CSV text into a [`Table`]. The first record is the header.
///
/// Returns an error when records have inconsistent arity or a quoted field is
/// left unterminated.
pub fn parse_csv(name: &str, text: &str) -> Result<Table, DatasetError> {
    parse_delimited(name, text, ',')
}

/// Parses TSV text into a [`Table`] (tab delimiter, same quoting rules).
pub fn parse_tsv(name: &str, text: &str) -> Result<Table, DatasetError> {
    parse_delimited(name, text, '\t')
}

/// Parses delimiter-separated text with RFC-4180 quoting.
pub fn parse_delimited(name: &str, text: &str, delim: char) -> Result<Table, DatasetError> {
    let records = parse_records(text, delim)?;
    let mut iter = records.into_iter();
    let header = iter.next().ok_or(DatasetError::Empty)?;
    let mut table = Table::new(name, header);
    for (i, record) in iter.enumerate() {
        if record.len() != table.column_count() {
            return Err(DatasetError::RaggedRecord {
                record: i + 2,
                found: record.len(),
                expected: table.column_count(),
            });
        }
        table.push_row(record);
    }
    Ok(table)
}

fn parse_records(text: &str, delim: char) -> Result<Vec<Vec<String>>, DatasetError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any_char = false;

    while let Some(c) = chars.next() {
        any_char = true;
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else if c == '"' && field.is_empty() {
            in_quotes = true;
        } else if c == delim {
            record.push(std::mem::take(&mut field));
        } else if c == '\r' {
            // swallow; handled with the following \n (or ignored)
        } else if c == '\n' {
            record.push(std::mem::take(&mut field));
            records.push(std::mem::take(&mut record));
        } else {
            field.push(c);
        }
    }
    if in_quotes {
        return Err(DatasetError::UnterminatedQuote);
    }
    if any_char && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Serializes a [`Table`] to CSV text (header + rows).
pub fn to_csv(table: &Table) -> String {
    to_delimited(table, ',')
}

/// Serializes a [`Table`] to TSV text.
pub fn to_tsv(table: &Table) -> String {
    to_delimited(table, '\t')
}

fn to_delimited(table: &Table, delim: char) -> String {
    let mut out = String::new();
    write_record(&mut out, &table.columns, delim);
    for row in &table.rows {
        write_record(&mut out, row, delim);
    }
    out
}

fn write_record(out: &mut String, fields: &[String], delim: char) {
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(delim);
        }
        if f.contains(delim) || f.contains('"') || f.contains('\n') {
            let escaped = f.replace('"', "\"\"");
            let _ = write!(out, "\"{escaped}\"");
        } else {
            out.push_str(f);
        }
    }
    out.push('\n');
}

/// Reads a CSV file from disk into a [`Table`] named after the file stem.
/// Non-UTF-8 bytes surface as [`DatasetError::InvalidUtf8`] (with the
/// offset of the first bad byte) instead of a generic read failure.
pub fn read_csv_file(path: impl AsRef<Path>) -> Result<Table, DatasetError> {
    let path = path.as_ref();
    let bytes = fs::read(path)?;
    let text = String::from_utf8(bytes).map_err(|e| DatasetError::InvalidUtf8 {
        valid_up_to: e.utf8_error().valid_up_to(),
    })?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("table")
        .to_owned();
    parse_csv(&name, &text)
}

/// Writes a [`Table`] to a CSV file.
pub fn write_csv_file(table: &Table, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, to_csv(table))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_csv() {
        let t = parse_csv("x", "a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(t.columns, vec!["a", "b"]);
        assert_eq!(t.rows, vec![vec!["1", "2"], vec!["3", "4"]]);
    }

    #[test]
    fn parse_without_trailing_newline() {
        let t = parse_csv("x", "a,b\n1,2").unwrap();
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn parse_quoted_fields() {
        let t = parse_csv("x", "name,addr\n\"Rafiei, Davood\",\"10230 \"\"A\"\" St\"\n").unwrap();
        assert_eq!(t.rows[0][0], "Rafiei, Davood");
        assert_eq!(t.rows[0][1], "10230 \"A\" St");
    }

    #[test]
    fn parse_embedded_newline_in_quotes() {
        let t = parse_csv("x", "a,b\n\"line1\nline2\",2\n").unwrap();
        assert_eq!(t.rows[0][0], "line1\nline2");
    }

    #[test]
    fn parse_crlf() {
        let t = parse_csv("x", "a,b\r\n1,2\r\n").unwrap();
        assert_eq!(t.rows, vec![vec!["1", "2"]]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_csv("x", "").is_err());
        assert!(parse_csv("x", "a,b\n1\n").is_err());
        assert!(parse_csv("x", "a,b\n\"unterminated,2\n").is_err());
    }

    #[test]
    fn empty_input_is_typed() {
        assert!(matches!(parse_csv("x", ""), Err(DatasetError::Empty)));
    }

    #[test]
    fn ragged_record_reports_position_and_arity() {
        match parse_csv("x", "a,b,c\n1,2,3\n4,5\n") {
            Err(DatasetError::RaggedRecord { record, found, expected }) => {
                assert_eq!(record, 3);
                assert_eq!(found, 2);
                assert_eq!(expected, 3);
            }
            other => panic!("expected RaggedRecord, got {other:?}"),
        }
    }

    #[test]
    fn truncated_quoted_file_is_typed() {
        // A file cut off mid-quoted-field (the classic truncation shape).
        let truncated = "a,b\n\"Rafiei, Dav";
        assert!(matches!(
            parse_csv("x", truncated),
            Err(DatasetError::UnterminatedQuote)
        ));
    }

    #[test]
    fn invalid_utf8_file_is_typed_with_offset() {
        let dir = std::env::temp_dir().join("tjoin-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("invalid-utf8.csv");
        std::fs::write(&path, b"a,b\n1,\xff\xfe\n").unwrap();
        match read_csv_file(&path) {
            Err(DatasetError::InvalidUtf8 { valid_up_to }) => assert_eq!(valid_up_to, 6),
            other => panic!("expected InvalidUtf8, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_with_source() {
        let err = read_csv_file("/nonexistent/tjoin-io-test.csv").unwrap_err();
        assert!(matches!(err, DatasetError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("dataset read failed"));
    }

    #[test]
    fn round_trip_csv() {
        let mut t = Table::new("rt", vec!["name".into(), "note".into()]);
        t.push_row(vec!["Rafiei, Davood".into(), "said \"hi\"".into()]);
        t.push_row(vec!["plain".into(), "multi\nline".into()]);
        let text = to_csv(&t);
        let parsed = parse_csv("rt", &text).unwrap();
        assert_eq!(parsed.columns, t.columns);
        assert_eq!(parsed.rows, t.rows);
    }

    #[test]
    fn round_trip_tsv() {
        let mut t = Table::new("rt", vec!["a".into(), "b".into()]);
        t.push_row(vec!["x\ty".into(), "z".into()]);
        let text = to_tsv(&t);
        let parsed = parse_tsv("rt", &text).unwrap();
        assert_eq!(parsed.rows, t.rows);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("tjoin-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.csv");
        let mut t = Table::new("table", vec!["a".into()]);
        t.push_row(vec!["v1".into()]);
        write_csv_file(&t, &path).unwrap();
        let back = read_csv_file(&path).unwrap();
        assert_eq!(back.name, "table");
        assert_eq!(back.rows, t.rows);
        std::fs::remove_file(&path).unwrap();
    }
}
