//! Request-stream workload generator for the serving layer.
//!
//! The resident-corpus cache (`tjoin-serve`) is exercised by *request
//! sequences*: the same repository submitted repeatedly, interleaved with
//! other repositories, so that warm hits, cold misses, and byte-budget
//! evictions all occur in one run. This module generates such sequences
//! deterministically:
//!
//! * `distinct` repositories are generated from the embedded
//!   [`RepositoryConfig`] under per-repository seeds, so their columns are
//!   content-distinct (distinct fingerprints) while each repository's own
//!   content is stable across requests;
//! * the request `sequence` indexes into those repositories with a
//!   hot-skewed distribution — repository 0 absorbs roughly half of all
//!   requests, mirroring the head-heavy reuse real corpus caches see — so
//!   a byte-budgeted cache keeps the hot repository resident while cold
//!   tails churn.
//!
//! Generation is deterministic per seed (under the workspace's offline
//! `rand` shim — a different stream than upstream `StdRng`, see the shim
//! docs).

use crate::repository::RepositoryConfig;
use crate::table::ColumnPair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the request-stream generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestWorkloadConfig {
    /// Number of distinct repositories to generate.
    pub distinct: usize,
    /// Number of requests in the sequence.
    pub requests: usize,
    /// Shape of each generated repository (pairs, rows, noise, decoys).
    pub repository: RepositoryConfig,
}

impl Default for RequestWorkloadConfig {
    fn default() -> Self {
        Self {
            distinct: 3,
            requests: 12,
            repository: RepositoryConfig::new(4, 40),
        }
    }
}

/// A generated request stream: the distinct repositories plus the order in
/// which they are requested.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestWorkload {
    /// The distinct repositories, indexable by the entries of `sequence`.
    pub repositories: Vec<Vec<ColumnPair>>,
    /// The request order: each entry indexes into `repositories`.
    pub sequence: Vec<usize>,
}

impl RequestWorkloadConfig {
    /// Convenience constructor for the common (distinct, requests) shape
    /// with the default repository shape.
    pub fn new(distinct: usize, requests: usize) -> Self {
        Self {
            distinct,
            requests,
            ..Self::default()
        }
    }

    /// Generates the workload deterministically from `seed`.
    ///
    /// Repository `i` is generated from `seed + i`, so two workloads
    /// sharing a seed share repository *content* regardless of how many
    /// distinct repositories each requests. The sequence always opens with
    /// request 0 → repository 0 (a guaranteed cold miss for the hot
    /// repository); subsequent requests draw repository 0 with probability
    /// ~1/2 and a uniform repository otherwise.
    pub fn generate(&self, seed: u64) -> RequestWorkload {
        assert!(self.distinct >= 1, "workload needs at least one repository");
        let repositories: Vec<Vec<ColumnPair>> = (0..self.distinct)
            .map(|i| self.repository.generate(seed + i as u64))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut sequence = Vec::with_capacity(self.requests);
        for i in 0..self.requests {
            if i == 0 || rng.gen_bool(0.5) {
                sequence.push(0);
            } else {
                sequence.push(rng.gen_range(0..self.distinct));
            }
        }
        RequestWorkload {
            repositories,
            sequence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let config = RequestWorkloadConfig::new(3, 20);
        assert_eq!(config.generate(7), config.generate(7));
        assert_ne!(config.generate(7).sequence, config.generate(8).sequence);
    }

    #[test]
    fn repositories_are_content_distinct() {
        let w = RequestWorkloadConfig::new(3, 4).generate(1);
        assert_eq!(w.repositories.len(), 3);
        assert_ne!(w.repositories[0], w.repositories[1]);
        assert_ne!(w.repositories[1], w.repositories[2]);
    }

    #[test]
    fn sequence_is_hot_skewed_and_in_range() {
        let w = RequestWorkloadConfig::new(4, 200).generate(2);
        assert_eq!(w.sequence.len(), 200);
        assert_eq!(w.sequence[0], 0, "first request must cold-miss the hot repository");
        assert!(w.sequence.iter().all(|&i| i < 4));
        let hot = w.sequence.iter().filter(|&&i| i == 0).count();
        // ~1/2 direct draws plus 1/4 of the uniform remainder ≈ 5/8.
        assert!(hot > 80, "hot repository underrepresented: {hot}/200");
        assert!(
            (1..4).all(|r| w.sequence.contains(&r)),
            "cold repositories never requested: {:?}",
            w.sequence
        );
    }

    #[test]
    fn shared_seed_shares_repository_content() {
        let small = RequestWorkloadConfig::new(2, 4).generate(5);
        let large = RequestWorkloadConfig::new(4, 4).generate(5);
        assert_eq!(small.repositories[0], large.repositories[0]);
        assert_eq!(small.repositories[1], large.repositories[1]);
    }

    #[test]
    #[should_panic(expected = "at least one repository")]
    fn zero_distinct_rejected() {
        let _ = RequestWorkloadConfig::new(0, 4).generate(0);
    }
}
