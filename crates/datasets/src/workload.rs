//! Request-stream workload generator for the serving layer.
//!
//! The resident-corpus cache (`tjoin-serve`) is exercised by *request
//! sequences*: the same repository submitted repeatedly, interleaved with
//! other repositories, so that warm hits, cold misses, and byte-budget
//! evictions all occur in one run. This module generates such sequences
//! deterministically:
//!
//! * `distinct` repositories are generated from the embedded
//!   [`RepositoryConfig`] under per-repository seeds, so their columns are
//!   content-distinct (distinct fingerprints) while each repository's own
//!   content is stable across requests;
//! * the request `sequence` indexes into those repositories with a
//!   hot-skewed distribution — repository 0 absorbs roughly half of all
//!   requests, mirroring the head-heavy reuse real corpus caches see — so
//!   a byte-budgeted cache keeps the hot repository resident while cold
//!   tails churn.
//!
//! Generation is deterministic per seed (under the workspace's offline
//! `rand` shim — a different stream than upstream `StdRng`, see the shim
//! docs).

use crate::repository::{is_decoy, joinable_rows, RepositoryConfig};
use crate::table::ColumnPair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the request-stream generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestWorkloadConfig {
    /// Number of distinct repositories to generate.
    pub distinct: usize,
    /// Number of requests in the sequence.
    pub requests: usize,
    /// Shape of each generated repository (pairs, rows, noise, decoys).
    pub repository: RepositoryConfig,
}

impl Default for RequestWorkloadConfig {
    fn default() -> Self {
        Self {
            distinct: 3,
            requests: 12,
            repository: RepositoryConfig::new(4, 40),
        }
    }
}

/// A generated request stream: the distinct repositories plus the order in
/// which they are requested.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestWorkload {
    /// The distinct repositories, indexable by the entries of `sequence`.
    pub repositories: Vec<Vec<ColumnPair>>,
    /// The request order: each entry indexes into `repositories`.
    pub sequence: Vec<usize>,
}

impl RequestWorkloadConfig {
    /// Convenience constructor for the common (distinct, requests) shape
    /// with the default repository shape.
    pub fn new(distinct: usize, requests: usize) -> Self {
        Self {
            distinct,
            requests,
            ..Self::default()
        }
    }

    /// Generates the workload deterministically from `seed`.
    ///
    /// Repository `i` is generated from `seed + i`, so two workloads
    /// sharing a seed share repository *content* regardless of how many
    /// distinct repositories each requests. The sequence always opens with
    /// request 0 → repository 0 (a guaranteed cold miss for the hot
    /// repository); subsequent requests draw repository 0 with probability
    /// ~1/2 and a uniform repository otherwise.
    pub fn generate(&self, seed: u64) -> RequestWorkload {
        assert!(self.distinct >= 1, "workload needs at least one repository");
        let repositories: Vec<Vec<ColumnPair>> = (0..self.distinct)
            .map(|i| self.repository.generate(seed + i as u64))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut sequence = Vec::with_capacity(self.requests);
        for i in 0..self.requests {
            if i == 0 || rng.gen_bool(0.5) {
                sequence.push(0);
            } else {
                sequence.push(rng.gen_range(0..self.distinct));
            }
        }
        RequestWorkload {
            repositories,
            sequence,
        }
    }
}

/// Configuration of the append-stream generator.
///
/// Where [`RequestWorkloadConfig`] replays whole repositories, this
/// generator grows **one** repository in place: a base repository plus a
/// sequence of append steps, each adding fresh joinable rows (same format
/// family, so the pair's existing transformations keep covering them) to
/// one of the repository's joinable pairs. The step sequence is hot-skewed
/// toward the first joinable pair — the shape where incremental
/// maintenance pays off most, since the hot pair's artifacts are extended
/// over and over while a rebuild would re-derive them from scratch each
/// time.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendWorkloadConfig {
    /// Shape of the base repository.
    pub repository: RepositoryConfig,
    /// Number of append steps in the sequence.
    pub appends: usize,
    /// Rows added per append step.
    pub rows_per_append: usize,
}

impl Default for AppendWorkloadConfig {
    fn default() -> Self {
        Self {
            repository: RepositoryConfig::new(4, 40),
            appends: 8,
            rows_per_append: 10,
        }
    }
}

/// One append step: fresh joinable rows for one pair of the base
/// repository.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendStep {
    /// Index into the base repository of the pair being grown.
    pub pair: usize,
    /// The appended `(source, target)` rows, same format family as the
    /// pair's existing rows.
    pub rows: Vec<(String, String)>,
}

/// A generated append stream: the base repository plus the ordered append
/// steps.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendWorkload {
    /// The repository before any append.
    pub base: Vec<ColumnPair>,
    /// The append steps, in application order.
    pub steps: Vec<AppendStep>,
}

impl AppendWorkloadConfig {
    /// Convenience constructor for the common (appends, rows) shape with
    /// the default repository shape.
    pub fn new(appends: usize, rows_per_append: usize) -> Self {
        Self {
            appends,
            rows_per_append,
            ..Self::default()
        }
    }

    /// Generates the workload deterministically from `seed`.
    ///
    /// Appends target only joinable pairs (decoys have no format family to
    /// extend). The first step always grows the first joinable pair (the
    /// hot pair); subsequent steps draw it with probability ~1/2 and a
    /// uniform joinable pair otherwise. Step `i`'s rows are generated
    /// under a per-step seed, so distinct steps append distinct content.
    pub fn generate(&self, seed: u64) -> AppendWorkload {
        assert!(self.rows_per_append >= 1, "rows_per_append must be at least 1");
        let base = self.repository.generate(seed);
        let joinable: Vec<usize> = base
            .iter()
            .enumerate()
            .filter(|(_, p)| !is_decoy(p))
            .map(|(i, _)| i)
            .collect();
        assert!(
            !joinable.is_empty(),
            "append workload needs at least one joinable pair"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6a09_e667_f3bc_c908);
        let steps = (0..self.appends)
            .map(|i| {
                let pair = if i == 0 || rng.gen_bool(0.5) {
                    joinable[0]
                } else {
                    joinable[rng.gen_range(0..joinable.len())]
                };
                let rows = joinable_rows(&base[pair], self.rows_per_append, seed ^ (i as u64 + 1))
                    .expect("joinable pairs always carry a family suffix");
                AppendStep { pair, rows }
            })
            .collect();
        AppendWorkload { base, steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let config = RequestWorkloadConfig::new(3, 20);
        assert_eq!(config.generate(7), config.generate(7));
        assert_ne!(config.generate(7).sequence, config.generate(8).sequence);
    }

    #[test]
    fn repositories_are_content_distinct() {
        let w = RequestWorkloadConfig::new(3, 4).generate(1);
        assert_eq!(w.repositories.len(), 3);
        assert_ne!(w.repositories[0], w.repositories[1]);
        assert_ne!(w.repositories[1], w.repositories[2]);
    }

    #[test]
    fn sequence_is_hot_skewed_and_in_range() {
        let w = RequestWorkloadConfig::new(4, 200).generate(2);
        assert_eq!(w.sequence.len(), 200);
        assert_eq!(w.sequence[0], 0, "first request must cold-miss the hot repository");
        assert!(w.sequence.iter().all(|&i| i < 4));
        let hot = w.sequence.iter().filter(|&&i| i == 0).count();
        // ~1/2 direct draws plus 1/4 of the uniform remainder ≈ 5/8.
        assert!(hot > 80, "hot repository underrepresented: {hot}/200");
        assert!(
            (1..4).all(|r| w.sequence.contains(&r)),
            "cold repositories never requested: {:?}",
            w.sequence
        );
    }

    #[test]
    fn shared_seed_shares_repository_content() {
        let small = RequestWorkloadConfig::new(2, 4).generate(5);
        let large = RequestWorkloadConfig::new(4, 4).generate(5);
        assert_eq!(small.repositories[0], large.repositories[0]);
        assert_eq!(small.repositories[1], large.repositories[1]);
    }

    #[test]
    #[should_panic(expected = "at least one repository")]
    fn zero_distinct_rejected() {
        let _ = RequestWorkloadConfig::new(0, 4).generate(0);
    }

    #[test]
    fn append_workload_deterministic_per_seed() {
        let config = AppendWorkloadConfig::new(6, 5);
        assert_eq!(config.generate(3), config.generate(3));
        assert_ne!(config.generate(3).steps, config.generate(4).steps);
    }

    #[test]
    fn append_steps_target_joinable_pairs_and_skew_hot() {
        let config = AppendWorkloadConfig {
            repository: RepositoryConfig::new(8, 20),
            appends: 40,
            rows_per_append: 3,
        };
        let w = config.generate(11);
        let hot = w
            .base
            .iter()
            .position(|p| !is_decoy(p))
            .expect("repository has joinable pairs");
        assert_eq!(w.steps.len(), 40);
        assert_eq!(w.steps[0].pair, hot, "first step must grow the hot pair");
        for step in &w.steps {
            assert!(!is_decoy(&w.base[step.pair]), "append targeted a decoy");
            assert_eq!(step.rows.len(), 3);
        }
        let hot_steps = w.steps.iter().filter(|s| s.pair == hot).count();
        assert!(hot_steps > 16, "hot pair underrepresented: {hot_steps}/40");
        assert!(
            w.steps.iter().any(|s| s.pair != hot),
            "cold pairs never appended"
        );
    }

    #[test]
    fn appended_rows_share_the_pair_family() {
        let w = AppendWorkloadConfig::new(4, 6).generate(5);
        // Distinct steps against the same pair append distinct content.
        let hot: Vec<&AppendStep> =
            w.steps.iter().filter(|s| s.pair == w.steps[0].pair).collect();
        if hot.len() >= 2 {
            assert_ne!(hot[0].rows, hot[1].rows);
        }
        // Rows come from the pair's own family generator.
        for step in &w.steps {
            let regen = joinable_rows(&w.base[step.pair], step.rows.len(), 0);
            assert!(regen.is_some(), "family must be recoverable from the name");
        }
    }
}
