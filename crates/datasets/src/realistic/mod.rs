//! Simulated real-world benchmarks.
//!
//! The paper evaluates on three real benchmarks that cannot be redistributed
//! (Google Fusion web tables from Zhu et al., the SyGuS-Comp/FlashFill
//! spreadsheet corpus, and City of Edmonton open data joined with white-pages
//! listings). These generators produce table pairs with the same
//! *joinability structure* so that every experiment exercises the same code
//! paths:
//!
//! * [`web_tables`] — 31 pairs over 17 topics, ~92 rows per table, values
//!   around 31 characters, multiple formatting rules per pair plus noise rows
//!   not coverable by any string transformation.
//! * [`spreadsheet`] — 108 pairs of short FlashFill-style cleaning tasks,
//!   ~34 rows per table, mostly coverable by a single transformation.
//! * [`open_data`] — one large address-join pair with a highly skewed n-gram
//!   distribution, so that n-gram row matching produces a huge, low-precision
//!   candidate set (the regime the paper reports for Open data).
//!
//! See `DESIGN.md` for the substitution rationale.

mod formats;
mod opendata;
mod spreadsheet;
mod web;

pub use formats::{
    format_date, format_person, format_phone, DateStyle, PersonName, PersonStyle, PhoneStyle,
};
pub use opendata::open_data;
pub use spreadsheet::spreadsheet;
pub use web::web_tables;
