//! Simulated open-government address benchmark.
//!
//! The paper joins ~3 million City of Edmonton property assessments with
//! white-pages listings on the address field. Two properties of that data
//! drive the reported behaviour and are reproduced here:
//!
//! 1. **Skewed n-gram distribution.** Addresses share long tokens (street
//!    names, "STREET", "AVENUE", quadrants), and house numbers repeat across
//!    streets, so representative n-grams collide across rows and the n-gram
//!    matcher returns enormous candidate sets with ~1% precision (Table 1 of
//!    the paper: P = 0.01, R = 0.92).
//! 2. **A single dominant format difference** between the two sources
//!    (long-form government addresses vs abbreviated listing addresses), so a
//!    small transformation set with a support threshold recovers a useful
//!    cover even from a < 1% sample (Table 2).

use crate::corpus;
use crate::table::{row_id, Table, TablePair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Title-cases a long-form street name ("124 STREET" → "124 Street").
fn title_case(street: &str) -> String {
    street
        .split_whitespace()
        .map(|w| {
            let lower = w.to_lowercase();
            let mut cs = lower.chars();
            match cs.next() {
                Some(first) => first.to_uppercase().collect::<String>() + cs.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Abbreviates the long-form street name used by the government table into
/// the white-pages style ("124 STREET" → "124 St"); used for the listing's
/// secondary "short address" column.
fn abbreviate_street(street: &str) -> String {
    let mut out = Vec::new();
    for word in street.split_whitespace() {
        let w = match word {
            "STREET" => "St".to_owned(),
            "AVENUE" => "Ave".to_owned(),
            "BOULEVARD" => "Blvd".to_owned(),
            "ROAD" => "Rd".to_owned(),
            "DRIVE" => "Dr".to_owned(),
            "TRAIL" => "Tr".to_owned(),
            other => {
                let lower = other.to_lowercase();
                let mut cs = lower.chars();
                match cs.next() {
                    Some(first) => first.to_uppercase().collect::<String>() + cs.as_str(),
                    None => String::new(),
                }
            }
        };
        out.push(w);
    }
    out.join(" ")
}

/// Generates the simulated open-data pair with `rows` assessed properties.
///
/// The source table is the government assessment roll (long-form addresses,
/// assessment values); the target table is a white-pages style listing
/// (person or business name plus an abbreviated address). Row `i` of the
/// source corresponds to row `i` of the target, but because house numbers and
/// streets repeat, textual matching produces many additional candidate pairs.
pub fn open_data(seed: u64, rows: usize) -> TablePair {
    assert!(rows > 0, "need at least one row");
    let mut rng = StdRng::seed_from_u64(seed);

    let mut source = Table::new(
        "edmonton-assessments",
        vec!["address".into(), "assessed_value".into(), "zoning".into()],
    );
    let mut target = Table::new(
        "white-pages",
        vec![
            "listing_address".into(),
            "short_address".into(),
            "name".into(),
            "phone".into(),
        ],
    );
    // Addresses deliberately repeat across rows (condo units, multi-tenant
    // properties): the key space scales with the row count so that the same
    // (house, street, quadrant) appears in a couple of rows on average, the
    // way assessment rolls and white pages overlap in the paper's data.
    let house_cardinality = (rows / 20).clamp(15, 300);
    let mut keys: Vec<(u32, usize, usize)> = Vec::with_capacity(rows);

    for _ in 0..rows {
        // Low-cardinality house numbers + a small street list => heavy n-gram
        // collisions across rows (the low-precision regime).
        let house = 10_000
            + 10 * rng.gen_range(0..u32::try_from(house_cardinality).expect("cardinality is clamped to 300"));
        let street_idx = rng.gen_range(0..corpus::STREETS.len());
        let street = corpus::STREETS[street_idx];
        let quadrant_idx = rng.gen_range(0..corpus::QUADRANTS.len());
        let quadrant = corpus::QUADRANTS[quadrant_idx];
        keys.push((house, street_idx, quadrant_idx));
        let suite: Option<u32> = rng.gen_bool(0.25).then(|| rng.gen_range(1..400));

        let gov_address = match suite {
            Some(s) => format!("{house} - {street} {quadrant} SUITE {s}"),
            None => format!("{house} - {street} {quadrant}"),
        };
        // The listing keeps the street words (title-cased; case differences
        // disappear under matching normalization) but drops the " - " and the
        // suite — the single dominant format difference, as in the paper's
        // data where one reformatting rule covers most true pairs.
        let listing_address = format!("{house} {} {quadrant}", title_case(street));
        let short_address = format!("{house} {} {quadrant}", abbreviate_street(street));

        let assessed = rng.gen_range(150_000..2_000_000);
        let zoning = ["RF1", "RF3", "RA7", "CB1", "DC2"][rng.gen_range(0..5)];

        let name = if rng.gen_bool(0.3) {
            let b = corpus::BUSINESS_NAMES[rng.gen_range(0..corpus::BUSINESS_NAMES.len())];
            let s = corpus::COMPANY_SUFFIXES[rng.gen_range(0..corpus::COMPANY_SUFFIXES.len())];
            format!("{b} {s}")
        } else {
            let first = corpus::FIRST_NAMES[rng.gen_range(0..corpus::FIRST_NAMES.len())];
            let last = corpus::LAST_NAMES[rng.gen_range(0..corpus::LAST_NAMES.len())];
            format!("{last}, {first}")
        };
        let phone = format!(
            "(780) {:03}-{:04}",
            rng.gen_range(200..999),
            rng.gen_range(0..10_000)
        );

        source.push_row(vec![gov_address, assessed.to_string(), zoning.to_string()]);
        target.push_row(vec![listing_address, short_address, name, phone]);
    }

    // Ground truth: a source row joins every target row describing the same
    // address (many-to-many), not only its own aligned row.
    let mut by_key: std::collections::HashMap<(u32, usize, usize), Vec<u32>> =
        std::collections::HashMap::new();
    for (row, key) in keys.iter().enumerate() {
        by_key.entry(*key).or_default().push(row_id(row));
    }
    let mut golden = Vec::with_capacity(rows * 2);
    for (row, key) in keys.iter().enumerate() {
        for &other in &by_key[key] {
            golden.push((row_id(row), other));
        }
    }
    golden.sort_unstable();

    TablePair {
        name: "open-data".into(),
        source,
        target,
        source_join_column: 0,
        target_join_column: 0,
        golden_pairs: golden,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_row_ids_index_real_rows() {
        // Pins the `row_id`-checked golden construction: the many-to-many
        // mapping only addresses rows that exist, and includes the diagonal
        // (every row joins at least itself).
        let pair = open_data(1, 400);
        let rows = pair.source.row_count();
        assert_eq!(rows, pair.target.row_count());
        assert!(!pair.golden_pairs.is_empty());
        for &(s, t) in &pair.golden_pairs {
            assert!((s as usize) < rows && (t as usize) < rows);
        }
        for row in 0..rows as u32 {
            assert!(pair.golden_pairs.binary_search(&(row, row)).is_ok(), "row {row} lost");
        }
    }

    #[test]
    fn shape_and_determinism() {
        let a = open_data(0, 500);
        let b = open_data(0, 500);
        assert_eq!(a, b);
        assert_eq!(a.source.row_count(), 500);
        assert_eq!(a.target.row_count(), 500);
        // Ground truth is many-to-many over duplicate addresses: every row is
        // at least paired with itself.
        assert!(a.golden_pairs.len() >= 500);
        for i in 0..500u32 {
            assert!(a.golden_pairs.binary_search(&(i, i)).is_ok());
        }
        assert_eq!(a.source.column_count(), 3);
        assert_eq!(a.target.column_count(), 4);
    }

    #[test]
    fn addresses_join_under_a_string_transformation_shape() {
        // The target address is derivable from the source address by dropping
        // " - " and abbreviating the street type; spot-check the house number
        // and quadrant are copied verbatim.
        let p = open_data(1, 100);
        for (s, t) in p.source.column(0).iter().zip(p.target.column(0)) {
            let house_src = s.split(' ').next().unwrap();
            let house_tgt = t.split(' ').next().unwrap();
            assert_eq!(house_src, house_tgt);
            let quad_src = s.split_whitespace().find(|w| corpus::QUADRANTS.contains(w));
            let quad_tgt = t.split_whitespace().find(|w| corpus::QUADRANTS.contains(w));
            assert_eq!(quad_src, quad_tgt);
        }
    }

    #[test]
    fn house_numbers_collide_across_rows() {
        // The low-precision regime requires repeated addresses fragments.
        let p = open_data(2, 2000);
        let mut houses = std::collections::HashMap::new();
        for s in p.source.column(0) {
            *houses.entry(s.split(' ').next().unwrap().to_owned()).or_insert(0usize) += 1;
        }
        let max = houses.values().max().copied().unwrap_or(0);
        assert!(max >= 5, "expected repeated house numbers, max repetition {max}");
    }

    #[test]
    fn title_casing() {
        assert_eq!(title_case("124 STREET"), "124 Street");
        assert_eq!(title_case("JASPER AVENUE"), "Jasper Avenue");
        assert_eq!(title_case("STONY PLAIN ROAD"), "Stony Plain Road");
    }

    #[test]
    fn listing_address_is_reformatted_source_address() {
        // After lower-casing, the listing address equals the government
        // address with the " - " dropped and the suite removed: the dominant
        // transformation the paper's open-data benchmark exhibits.
        let p = open_data(5, 200);
        for (s, t) in p.source.column(0).iter().zip(p.target.column(0)) {
            let expected = s
                .to_lowercase()
                .replace(" - ", " ")
                .split(" suite ")
                .next()
                .unwrap()
                .to_owned();
            assert_eq!(t.to_lowercase(), expected);
        }
    }

    #[test]
    fn street_abbreviation() {
        assert_eq!(abbreviate_street("124 STREET"), "124 St");
        assert_eq!(abbreviate_street("JASPER AVENUE"), "Jasper Ave");
        assert_eq!(abbreviate_street("GATEWAY BOULEVARD"), "Gateway Blvd");
        assert_eq!(abbreviate_street("FORT ROAD"), "Fort Rd");
        assert_eq!(abbreviate_street("TERWILLEGAR DRIVE"), "Terwillegar Dr");
        assert_eq!(abbreviate_street("CALGARY TRAIL"), "Calgary Tr");
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_rejected() {
        let _ = open_data(0, 0);
    }
}
