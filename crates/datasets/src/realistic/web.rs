//! Simulated web-tables benchmark (31 pairs over 17 topics).
//!
//! The original benchmark (Zhu et al. [33]) pairs Google Fusion tables that
//! describe the same entities with different formatting. This generator
//! reproduces its structural properties: ~92 rows per table, join values
//! around 30 characters, *several* formatting rules active within a single
//! pair (so no single transformation covers everything), and a slice of noise
//! rows whose target values were entered inconsistently and cannot be covered
//! by any string transformation.

use crate::corpus;
use crate::realistic::formats::*;
use crate::table::{row_id, Table, TablePair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Approximate rows per table, matching the paper's reported mean of 92.13.
const ROWS_PER_TABLE: usize = 92;
/// Fraction of rows rendered inconsistently (noise).
const NOISE_FRACTION: f64 = 0.08;

/// The topics the generator cycles through; 17 distinct topics as in the
/// paper, instantiated 31 times with different seeds and rule mixes.
const TOPICS: [Topic; 17] = [
    Topic::StaffNameToAbbrev,
    Topic::NameToEmail,
    Topic::GovernorsStateParty,
    Topic::PhoneFormats,
    Topic::DatesOfBirth,
    Topic::CityCountry,
    Topic::CourseInstructor,
    Topic::CompanyTicker,
    Topic::AlbumArtist,
    Topic::AirportCodes,
    Topic::BookAuthorYear,
    Topic::MovieDirector,
    Topic::UniversityAbbrev,
    Topic::AthleteTeam,
    Topic::SenatorsTerm,
    Topic::ProductModel,
    Topic::ConferenceLocation,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Topic {
    StaffNameToAbbrev,
    NameToEmail,
    GovernorsStateParty,
    PhoneFormats,
    DatesOfBirth,
    CityCountry,
    CourseInstructor,
    CompanyTicker,
    AlbumArtist,
    AirportCodes,
    BookAuthorYear,
    MovieDirector,
    UniversityAbbrev,
    AthleteTeam,
    SenatorsTerm,
    ProductModel,
    ConferenceLocation,
}

impl Topic {
    fn name(self) -> &'static str {
        match self {
            Topic::StaffNameToAbbrev => "staff-names",
            Topic::NameToEmail => "name-email",
            Topic::GovernorsStateParty => "governors",
            Topic::PhoneFormats => "phones",
            Topic::DatesOfBirth => "birthdays",
            Topic::CityCountry => "cities",
            Topic::CourseInstructor => "courses",
            Topic::CompanyTicker => "tickers",
            Topic::AlbumArtist => "albums",
            Topic::AirportCodes => "airports",
            Topic::BookAuthorYear => "books",
            Topic::MovieDirector => "movies",
            Topic::UniversityAbbrev => "universities",
            Topic::AthleteTeam => "athletes",
            Topic::SenatorsTerm => "senators",
            Topic::ProductModel => "products",
            Topic::ConferenceLocation => "conferences",
        }
    }
}

/// Generates the 31 simulated web table pairs.
pub fn web_tables(seed: u64) -> Vec<TablePair> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(31);
    for i in 0..31 {
        let topic = TOPICS[i % TOPICS.len()];
        pairs.push(generate_pair(topic, i, &mut rng));
    }
    pairs
}

fn random_person(rng: &mut StdRng) -> PersonName {
    let first = corpus::FIRST_NAMES[rng.gen_range(0..corpus::FIRST_NAMES.len())];
    let last = corpus::LAST_NAMES[rng.gen_range(0..corpus::LAST_NAMES.len())];
    if rng.gen_bool(0.3) {
        let middle = corpus::FIRST_NAMES[rng.gen_range(0..corpus::FIRST_NAMES.len())];
        PersonName::with_middle(first, middle, last)
    } else {
        PersonName::new(first, last)
    }
}

fn random_phone_digits(rng: &mut StdRng) -> String {
    let area = ["780", "403", "587", "825"][rng.gen_range(0..4)];
    format!("{}{:07}", area, rng.gen_range(0..10_000_000u32))
}

/// Scrambles a value so that no string transformation of the source can
/// produce it (noise rows: typos, nicknames, reordered words).
fn noisify(value: &str, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = value.chars().collect();
    match rng.gen_range(0..3) {
        0 => {
            // Swap two interior characters.
            if chars.len() >= 4 {
                let i = rng.gen_range(1..chars.len() - 2);
                chars.swap(i, i + 1);
            }
            chars.into_iter().collect()
        }
        1 => {
            // Drop a character.
            if chars.len() >= 3 {
                let i = rng.gen_range(1..chars.len() - 1);
                chars.remove(i);
            }
            chars.into_iter().collect()
        }
        _ => format!("{value} (ret.)"),
    }
}

fn generate_pair(topic: Topic, index: usize, rng: &mut StdRng) -> TablePair {
    let rows = ROWS_PER_TABLE + rng.gen_range(0..16);
    let mut source = Table::new(
        format!("web-{index:02}-{}-source", topic.name()),
        vec!["key".into(), "attribute".into()],
    );
    let mut target = Table::new(
        format!("web-{index:02}-{}-target", topic.name()),
        vec!["key".into(), "attribute".into()],
    );
    let mut golden = Vec::with_capacity(rows);

    for row in 0..rows {
        let (src_key, tgt_key, src_attr, tgt_attr) = generate_row(topic, rng);
        let noisy = rng.gen_bool(NOISE_FRACTION);
        let tgt_key = if noisy { noisify(&tgt_key, rng) } else { tgt_key };
        source.push_row(vec![src_key, src_attr]);
        target.push_row(vec![tgt_key, tgt_attr]);
        golden.push((row_id(row), row_id(row)));
    }

    TablePair {
        name: format!("web-{index:02}-{}", topic.name()),
        source,
        target,
        source_join_column: 0,
        target_join_column: 0,
        golden_pairs: golden,
    }
}

/// Produces one row for a topic: `(source_key, target_key, source_attr,
/// target_attr)`. Each topic uses 2–3 distinct target formats chosen per row
/// so that a covering set needs several transformations.
fn generate_row(topic: Topic, rng: &mut StdRng) -> (String, String, String, String) {
    match topic {
        Topic::StaffNameToAbbrev => {
            let p = random_person(rng);
            let dept = corpus::DEPARTMENTS[rng.gen_range(0..corpus::DEPARTMENTS.len())];
            let year = rng.gen_range(1985..2022);
            let src = format_person(&p, PersonStyle::LastCommaFirst);
            let tgt = if rng.gen_bool(0.6) {
                format_person(&p, PersonStyle::InitialLast)
            } else {
                format_person(&p, PersonStyle::InitialDotLast)
            };
            (src, tgt, format!("{dept} ({year})"), format!("({}) {}", 780, year))
        }
        Topic::NameToEmail => {
            let p = random_person(rng);
            let src = format_person(&p, PersonStyle::LastCommaFirst);
            let tgt = if rng.gen_bool(0.7) {
                format_person(&p, PersonStyle::Email { domain: "ualberta.ca" })
            } else {
                format!(
                    "{}@ualberta.ca",
                    format_person(&p, PersonStyle::UserId)
                )
            };
            let course = format!("CMPUT {}", rng.gen_range(100..700));
            (src, tgt, "Professor".into(), course)
        }
        Topic::GovernorsStateParty => {
            let p = random_person(rng);
            let (state, abbr) = corpus::STATES[rng.gen_range(0..corpus::STATES.len())];
            let src = format!("{} - Governor of {}", format_person(&p, PersonStyle::FirstLast), state);
            let tgt = if rng.gen_bool(0.5) {
                format!("{} ({})", format_person(&p, PersonStyle::LastCommaFirst), abbr)
            } else {
                format!("Gov. {} ({})", format_person(&p, PersonStyle::InitialLast), abbr)
            };
            let party = if rng.gen_bool(0.5) { "Democratic" } else { "Republican" };
            (src, tgt, party.into(), state.into())
        }
        Topic::PhoneFormats => {
            let digits = random_phone_digits(rng);
            let p = random_person(rng);
            let src = format_phone(&digits, PhoneStyle::Parenthesized);
            let tgt = match rng.gen_range(0..3) {
                0 => format_phone(&digits, PhoneStyle::International),
                1 => format_phone(&digits, PhoneStyle::Dashed),
                _ => format_phone(&digits, PhoneStyle::Dotted),
            };
            (
                src,
                tgt,
                format_person(&p, PersonStyle::FirstLast),
                format_person(&p, PersonStyle::InitialLast),
            )
        }
        Topic::DatesOfBirth => {
            let p = random_person(rng);
            let (y, m, d) = (rng.gen_range(1940..2005), rng.gen_range(1..=12), rng.gen_range(1..=28));
            let src = format!(
                "{} (b. {})",
                format_person(&p, PersonStyle::FirstLast),
                format_date(y, m, d, DateStyle::MonthNameDayYear)
            );
            let tgt = if rng.gen_bool(0.5) {
                format!("{}: {}", format_person(&p, PersonStyle::LastCommaFirst), format_date(y, m, d, DateStyle::Iso))
            } else {
                format!("{} {}", format_person(&p, PersonStyle::InitialLast), format_date(y, m, d, DateStyle::ShortMonth))
            };
            (src, tgt, y.to_string(), format!("{m:02}"))
        }
        Topic::CityCountry => {
            let city = corpus::CITIES[rng.gen_range(0..corpus::CITIES.len())];
            let pop = rng.gen_range(50_000..3_000_000);
            let src = format!("{city}, Alberta, Canada");
            let tgt = if rng.gen_bool(0.5) {
                format!("{city} (Canada)")
            } else {
                format!("City of {city}")
            };
            (src, tgt, pop.to_string(), "Canada".into())
        }
        Topic::CourseInstructor => {
            let p = random_person(rng);
            let dept = ["CMPUT", "PHYS", "MATH", "STAT", "BIOL"][rng.gen_range(0..5)];
            let num = rng.gen_range(100..700);
            let src = format!("{dept} {num}: {}", format_person(&p, PersonStyle::FirstLast));
            let tgt = if rng.gen_bool(0.6) {
                format!("{dept}{num}")
            } else {
                format!("{dept} {num} ({})", format_person(&p, PersonStyle::InitialLast))
            };
            (src, tgt, format_person(&p, PersonStyle::Email { domain: "ualberta.ca" }), "3 credits".into())
        }
        Topic::CompanyTicker => {
            let base = corpus::BUSINESS_NAMES[rng.gen_range(0..corpus::BUSINESS_NAMES.len())];
            let suffix = corpus::COMPANY_SUFFIXES[rng.gen_range(0..corpus::COMPANY_SUFFIXES.len())];
            let ticker: String = base
                .split_whitespace()
                .filter_map(|w| w.chars().next())
                .collect::<String>()
                .to_uppercase();
            let src = format!("{base} {suffix}.");
            let tgt = if rng.gen_bool(0.5) {
                format!("{base} ({ticker})")
            } else {
                format!("{ticker}: {base}")
            };
            (src, tgt, ticker, suffix.to_string())
        }
        Topic::AlbumArtist => {
            let p = random_person(rng);
            let year = rng.gen_range(1965..2023);
            let album = format!("{} {}", corpus::CITIES[rng.gen_range(0..corpus::CITIES.len())], ["Nights", "Dreams", "Sessions", "Live"][rng.gen_range(0..4)]);
            let src = format!("{album} - {}", format_person(&p, PersonStyle::FirstLast));
            let tgt = if rng.gen_bool(0.5) {
                format!("{} — \"{album}\" ({year})", format_person(&p, PersonStyle::LastCommaFirst))
            } else {
                format!("\"{album}\" by {}", format_person(&p, PersonStyle::InitialLast))
            };
            (src, tgt, year.to_string(), "Studio".into())
        }
        Topic::AirportCodes => {
            let city = corpus::CITIES[rng.gen_range(0..corpus::CITIES.len())];
            let code: String = city.chars().filter(|c| c.is_alphabetic()).take(3).collect::<String>().to_uppercase();
            let src = format!("{city} International Airport");
            let tgt = if rng.gen_bool(0.5) {
                format!("{code} - {city}")
            } else {
                format!("{city} ({code})")
            };
            (src, tgt, code, "International".into())
        }
        Topic::BookAuthorYear => {
            let p = random_person(rng);
            let year = rng.gen_range(1900..2023);
            let title = format!("The {} of {}", ["History", "Art", "Science", "Theory"][rng.gen_range(0..4)], corpus::CITIES[rng.gen_range(0..corpus::CITIES.len())]);
            let src = format!("{title}, by {}", format_person(&p, PersonStyle::FirstLast));
            let tgt = if rng.gen_bool(0.5) {
                format!("{} ({year}). {title}", format_person(&p, PersonStyle::LastCommaFirst))
            } else {
                format!("{title} [{year}]")
            };
            (src, tgt, year.to_string(), "Hardcover".into())
        }
        Topic::MovieDirector => {
            let p = random_person(rng);
            let year = rng.gen_range(1950..2023);
            let film = format!("{} {}", ["Midnight in", "Return to", "Escape from", "Letters from"][rng.gen_range(0..4)], corpus::CITIES[rng.gen_range(0..corpus::CITIES.len())]);
            let src = format!("{film} ({year})");
            let tgt = if rng.gen_bool(0.6) {
                format!("{film} - dir. {}", format_person(&p, PersonStyle::InitialLast))
            } else {
                format!("{year}: {film}")
            };
            (src, tgt, format_person(&p, PersonStyle::FirstLast), year.to_string())
        }
        Topic::UniversityAbbrev => {
            let city = corpus::CITIES[rng.gen_range(0..corpus::CITIES.len())];
            let abbr: String = format!("U{}", city.chars().next().unwrap_or('X'));
            let src = format!("University of {city}");
            let tgt = if rng.gen_bool(0.5) {
                format!("{abbr} ({city})")
            } else {
                format!("Univ. of {city}")
            };
            (src, tgt, abbr, "Public".into())
        }
        Topic::AthleteTeam => {
            let p = random_person(rng);
            let city = corpus::CITIES[rng.gen_range(0..corpus::CITIES.len())];
            let team = format!("{city} {}", ["Oilers", "Flames", "Jets", "Canucks"][rng.gen_range(0..4)]);
            let num = rng.gen_range(1..99);
            let src = format!("{} #{num} ({team})", format_person(&p, PersonStyle::FirstLast));
            let tgt = if rng.gen_bool(0.5) {
                format!("{}, {team}", format_person(&p, PersonStyle::LastCommaFirst))
            } else {
                format!("#{num} {}", format_person(&p, PersonStyle::InitialLast))
            };
            (src, tgt, team, num.to_string())
        }
        Topic::SenatorsTerm => {
            let p = random_person(rng);
            let (state, abbr) = corpus::STATES[rng.gen_range(0..corpus::STATES.len())];
            let start = rng.gen_range(1990..2020);
            let src = format!("Sen. {} ({state}, since {start})", format_person(&p, PersonStyle::FirstLast));
            let tgt = if rng.gen_bool(0.5) {
                format!("{} [{abbr}]", format_person(&p, PersonStyle::LastCommaFirst))
            } else {
                format!("{} - {abbr} - {start}", format_person(&p, PersonStyle::InitialLast))
            };
            (src, tgt, state.into(), start.to_string())
        }
        Topic::ProductModel => {
            let brand = ["Nova", "Apex", "Zenith", "Orion", "Vertex"][rng.gen_range(0..5)];
            let series = ["X", "Pro", "Air", "Max"][rng.gen_range(0..4)];
            let num = rng.gen_range(100..999);
            let src = format!("{brand} {series}-{num}");
            let tgt = if rng.gen_bool(0.5) {
                format!("{brand}{series}{num}")
            } else {
                format!("{brand} {series} {num} (2023)")
            };
            (src, tgt, num.to_string(), series.to_string())
        }
        Topic::ConferenceLocation => {
            let city = corpus::CITIES[rng.gen_range(0..corpus::CITIES.len())];
            let year = rng.gen_range(2000..2024);
            let conf = ["ICDE", "SIGMOD", "VLDB", "KDD", "WWW"][rng.gen_range(0..5)];
            let src = format!("{conf} {year}, {city}, Canada");
            let tgt = if rng.gen_bool(0.5) {
                format!("{conf}'{}", year % 100)
            } else {
                format!("{conf} {year} ({city})")
            };
            (src, tgt, city.into(), year.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_row_ids_index_real_rows() {
        // Pins the `row_id`-checked golden construction: every golden id
        // addresses a row that exists in its table.
        for pair in web_tables(0) {
            let (s_rows, t_rows) = (pair.source.row_count(), pair.target.row_count());
            for &(s, t) in &pair.golden_pairs {
                assert!((s as usize) < s_rows && (t as usize) < t_rows, "{}", pair.name);
            }
        }
    }

    #[test]
    fn thirty_one_pairs_with_expected_shape() {
        let pairs = web_tables(0);
        assert_eq!(pairs.len(), 31);
        for p in &pairs {
            assert!(p.source.row_count() >= ROWS_PER_TABLE);
            assert_eq!(p.source.row_count(), p.target.row_count());
            assert_eq!(p.golden_pairs.len(), p.source.row_count());
            assert_eq!(p.source.column_count(), 2);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(web_tables(3)[0], web_tables(3)[0]);
        assert_ne!(web_tables(3)[0].source.rows, web_tables(4)[0].source.rows);
    }

    #[test]
    fn average_row_count_near_paper() {
        let pairs = web_tables(1);
        let avg: f64 = pairs.iter().map(|p| p.source.row_count() as f64).sum::<f64>() / 31.0;
        assert!((85.0..=110.0).contains(&avg), "avg rows {avg}");
    }

    #[test]
    fn topics_cycle_and_names_unique() {
        let pairs = web_tables(1);
        let names: std::collections::HashSet<&str> =
            pairs.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names.len(), 31);
    }

    #[test]
    fn noise_rows_present_but_minority() {
        // Count target keys that are not derivable even by direct equality or
        // obvious containment: approximate by counting "(ret.)" markers plus
        // assuming swaps/drops exist; just check the generator produces both
        // clean and noisy rows by regenerating many rows.
        let pairs = web_tables(9);
        let total: usize = pairs.iter().map(|p| p.target.row_count()).sum();
        let marked: usize = pairs
            .iter()
            .flat_map(|p| p.target.rows.iter())
            .filter(|r| r[0].contains("(ret.)"))
            .count();
        assert!(marked > 0, "expected some noise rows");
        assert!((marked as f64) < 0.1 * total as f64, "too much noise: {marked}/{total}");
    }

    #[test]
    fn join_values_have_realistic_length() {
        let pairs = web_tables(5);
        let avg: f64 = pairs
            .iter()
            .map(|p| p.average_join_value_length())
            .sum::<f64>()
            / pairs.len() as f64;
        assert!((12.0..=45.0).contains(&avg), "avg join length {avg}");
    }
}
