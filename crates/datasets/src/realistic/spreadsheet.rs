//! Simulated spreadsheet benchmark (108 FlashFill/BlinkFill-style pairs).
//!
//! The original corpus (SyGuS-Comp 2016 PBE-Strings track) contains short
//! data-cleaning tasks collected from Excel help forums: extracting name
//! parts, reformatting phone numbers, splitting paths, and the like. Each
//! task here is a small table pair (~34 rows, short values) that is mostly
//! coverable by a single transformation — the property that drives the
//! paper's numbers on this dataset (higher top-coverage, smaller covering
//! sets than web tables).

use crate::corpus;
use crate::realistic::formats::*;
use crate::table::{row_id, Table, TablePair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Average rows per task, matching the paper's 34.43.
const ROWS_PER_TASK: usize = 34;

/// The FlashFill-style task kinds; 12 kinds × 9 instances = 108 pairs.
const TASKS: [Task; 12] = [
    Task::ExtractFirstName,
    Task::ExtractLastName,
    Task::Initials,
    Task::EmailDomain,
    Task::EmailUser,
    Task::PhoneAreaCode,
    Task::PhoneNormalize,
    Task::FileBaseName,
    Task::FileExtension,
    Task::DateYear,
    Task::TitleFromCitation,
    Task::ZipFromAddress,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Task {
    ExtractFirstName,
    ExtractLastName,
    Initials,
    EmailDomain,
    EmailUser,
    PhoneAreaCode,
    PhoneNormalize,
    FileBaseName,
    FileExtension,
    DateYear,
    TitleFromCitation,
    ZipFromAddress,
}

impl Task {
    fn name(self) -> &'static str {
        match self {
            Task::ExtractFirstName => "first-name",
            Task::ExtractLastName => "last-name",
            Task::Initials => "initials",
            Task::EmailDomain => "email-domain",
            Task::EmailUser => "email-user",
            Task::PhoneAreaCode => "area-code",
            Task::PhoneNormalize => "phone-normalize",
            Task::FileBaseName => "file-basename",
            Task::FileExtension => "file-extension",
            Task::DateYear => "date-year",
            Task::TitleFromCitation => "citation-title",
            Task::ZipFromAddress => "address-zip",
        }
    }
}

/// Generates the 108 simulated spreadsheet task pairs.
pub fn spreadsheet(seed: u64) -> Vec<TablePair> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(108);
    for i in 0..108 {
        let task = TASKS[i % TASKS.len()];
        pairs.push(generate_task(task, i, &mut rng));
    }
    pairs
}

fn random_person(rng: &mut StdRng) -> PersonName {
    let first = corpus::FIRST_NAMES[rng.gen_range(0..corpus::FIRST_NAMES.len())];
    let last = corpus::LAST_NAMES[rng.gen_range(0..corpus::LAST_NAMES.len())];
    PersonName::new(first, last)
}

fn generate_task(task: Task, index: usize, rng: &mut StdRng) -> TablePair {
    let rows = ROWS_PER_TASK + rng.gen_range(0..8) - 4;
    let mut source_values = Vec::with_capacity(rows);
    let mut target_values = Vec::with_capacity(rows);
    for _ in 0..rows {
        let (s, t) = generate_row(task, rng);
        source_values.push(s);
        target_values.push(t);
    }
    let source = Table::single_column(
        format!("sheet-{index:03}-{}-input", task.name()),
        "input",
        source_values,
    );
    let target = Table::single_column(
        format!("sheet-{index:03}-{}-output", task.name()),
        "output",
        target_values,
    );
    let golden = (0..rows).map(|i| (row_id(i), row_id(i))).collect();
    TablePair {
        name: format!("sheet-{index:03}-{}", task.name()),
        source,
        target,
        source_join_column: 0,
        target_join_column: 0,
        golden_pairs: golden,
    }
}

fn generate_row(task: Task, rng: &mut StdRng) -> (String, String) {
    match task {
        Task::ExtractFirstName => {
            let p = random_person(rng);
            (format_person(&p, PersonStyle::FirstLast), p.first.clone())
        }
        Task::ExtractLastName => {
            let p = random_person(rng);
            (format_person(&p, PersonStyle::LastCommaFirst), p.last.clone())
        }
        Task::Initials => {
            let p = random_person(rng);
            let initials = format!(
                "{}{}",
                p.first.chars().next().unwrap(),
                p.last.chars().next().unwrap()
            );
            (format_person(&p, PersonStyle::FirstLast), initials)
        }
        Task::EmailDomain => {
            let p = random_person(rng);
            let domain = ["ualberta.ca", "gmail.com", "outlook.com", "company.org"]
                [rng.gen_range(0..4)];
            (
                format_person(&p, PersonStyle::Email { domain }),
                domain.to_owned(),
            )
        }
        Task::EmailUser => {
            let p = random_person(rng);
            let email = format_person(&p, PersonStyle::Email { domain: "ualberta.ca" });
            let user = email.split('@').next().unwrap().to_owned();
            (email, user)
        }
        Task::PhoneAreaCode => {
            let digits = format!("{}{:07}", ["780", "403", "587"][rng.gen_range(0..3)], rng.gen_range(0..10_000_000u32));
            (
                format_phone(&digits, PhoneStyle::Parenthesized),
                digits[0..3].to_owned(),
            )
        }
        Task::PhoneNormalize => {
            let digits = format!("{}{:07}", ["780", "403", "587"][rng.gen_range(0..3)], rng.gen_range(0..10_000_000u32));
            (
                format_phone(&digits, PhoneStyle::Dotted),
                format_phone(&digits, PhoneStyle::Dashed),
            )
        }
        Task::FileBaseName => {
            let dir = ["reports", "data", "images", "docs"][rng.gen_range(0..4)];
            let base = format!("{}_{}", ["summary", "budget", "draft", "final"][rng.gen_range(0..4)], rng.gen_range(1..99));
            let ext = ["pdf", "xlsx", "txt", "png"][rng.gen_range(0..4)];
            (format!("C:/{dir}/{base}.{ext}"), base)
        }
        Task::FileExtension => {
            let base = format!("{}{}", ["report", "photo", "notes", "sheet"][rng.gen_range(0..4)], rng.gen_range(1..999));
            let ext = ["pdf", "xlsx", "txt", "png", "csv"][rng.gen_range(0..5)];
            (format!("{base}.{ext}"), ext.to_owned())
        }
        Task::DateYear => {
            let (y, m, d) = (rng.gen_range(1980..2024), rng.gen_range(1..=12), rng.gen_range(1..=28));
            (
                format_date(y, m, d, DateStyle::MonthNameDayYear),
                y.to_string(),
            )
        }
        Task::TitleFromCitation => {
            let p = random_person(rng);
            let year = rng.gen_range(1990..2024);
            let title = format!(
                "{} {}",
                ["Efficient", "Scalable", "Robust", "Adaptive"][rng.gen_range(0..4)],
                ["Joins", "Indexing", "Matching", "Cleaning"][rng.gen_range(0..4)]
            );
            (
                format!("{} ({year}). {title}.", format_person(&p, PersonStyle::LastCommaFirst)),
                title,
            )
        }
        Task::ZipFromAddress => {
            let num = rng.gen_range(100..99999);
            let street = corpus::STREETS[rng.gen_range(0..corpus::STREETS.len())];
            let zip = format!("T{}{} {}{}{}", rng.gen_range(0..9), ['A', 'B', 'C', 'E'][rng.gen_range(0..4)], rng.gen_range(0..9), ['G', 'H', 'J', 'K'][rng.gen_range(0..4)], rng.gen_range(0..9));
            (format!("{num} {street}, Edmonton, AB {zip}"), zip)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_mapping_is_the_checked_identity() {
        // Pins the `row_id`-checked golden construction: the mapping is the
        // identity over exactly the generated row range.
        for pair in spreadsheet(0) {
            let rows = pair.source.row_count();
            assert_eq!(pair.golden_pairs.len(), rows, "{}", pair.name);
            for (i, &(s, t)) in pair.golden_pairs.iter().enumerate() {
                assert_eq!((s as usize, t as usize), (i, i), "{}", pair.name);
            }
        }
    }

    #[test]
    fn one_hundred_eight_pairs() {
        let pairs = spreadsheet(0);
        assert_eq!(pairs.len(), 108);
        for p in &pairs {
            assert!(p.source.row_count() >= ROWS_PER_TASK - 4);
            assert_eq!(p.source.row_count(), p.target.row_count());
            assert_eq!(p.source.column_count(), 1);
        }
    }

    #[test]
    fn average_row_count_near_paper() {
        let pairs = spreadsheet(1);
        let avg: f64 =
            pairs.iter().map(|p| p.source.row_count() as f64).sum::<f64>() / pairs.len() as f64;
        assert!((30.0..=40.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn values_are_short() {
        let pairs = spreadsheet(2);
        let avg: f64 = pairs
            .iter()
            .map(|p| p.average_join_value_length())
            .sum::<f64>()
            / pairs.len() as f64;
        assert!(avg < 30.0, "avg join value length {avg}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(spreadsheet(7)[10], spreadsheet(7)[10]);
    }

    #[test]
    fn email_user_task_is_prefix() {
        let pairs = spreadsheet(3);
        let email_user = pairs.iter().find(|p| p.name.contains("email-user")).unwrap();
        for (s, t) in email_user
            .source
            .column(0)
            .iter()
            .zip(email_user.target.column(0))
        {
            assert!(s.starts_with(t), "{t} not a prefix of {s}");
        }
    }

    #[test]
    fn extension_task_is_suffix_piece() {
        let pairs = spreadsheet(3);
        let ext = pairs.iter().find(|p| p.name.contains("file-extension")).unwrap();
        for (s, t) in ext.source.column(0).iter().zip(ext.target.column(0)) {
            assert!(s.ends_with(&format!(".{t}")), "{s} does not end with .{t}");
        }
    }
}
