//! Formatting helpers shared by the simulated benchmark generators.
//!
//! Each helper renders the same underlying entity (a person, a phone number,
//! a date) in one of several surface formats; the generators pick different
//! formats for the source and target columns so the pair is joinable only
//! under a string transformation, exactly like the paper's motivating
//! examples (Figure 1).

use serde::{Deserialize, Serialize};

/// A person with a first name, optional middle name, and last name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PersonName {
    /// Given name.
    pub first: String,
    /// Optional middle name.
    pub middle: Option<String>,
    /// Family name.
    pub last: String,
}

impl PersonName {
    /// Creates a person without a middle name.
    pub fn new(first: impl Into<String>, last: impl Into<String>) -> Self {
        Self {
            first: first.into(),
            middle: None,
            last: last.into(),
        }
    }

    /// Creates a person with a middle name.
    pub fn with_middle(
        first: impl Into<String>,
        middle: impl Into<String>,
        last: impl Into<String>,
    ) -> Self {
        Self {
            first: first.into(),
            middle: Some(middle.into()),
            last: last.into(),
        }
    }
}

/// Surface formats for a [`PersonName`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PersonStyle {
    /// "Rafiei, Davood" (middle initial appended when present).
    LastCommaFirst,
    /// "Davood Rafiei".
    FirstLast,
    /// "D Rafiei".
    InitialLast,
    /// "D. Rafiei".
    InitialDotLast,
    /// "davood.rafiei@ualberta.ca" style email (lowercased).
    Email {
        /// Domain appended after the `@`.
        domain: &'static str,
    },
    /// "drafiei" style user id (first initial + last name, lowercased).
    UserId,
    /// "RAFIEI, DAVOOD" (upper-case roster style).
    UpperLastCommaFirst,
}

/// Renders a person in the requested style.
pub fn format_person(p: &PersonName, style: PersonStyle) -> String {
    let initial = p.first.chars().next().unwrap_or('X');
    match style {
        PersonStyle::LastCommaFirst => match &p.middle {
            Some(m) => format!("{}, {} {}", p.last, p.first, initial_of(m)),
            None => format!("{}, {}", p.last, p.first),
        },
        PersonStyle::FirstLast => match &p.middle {
            Some(m) => format!("{} {} {}", p.first, m, p.last),
            None => format!("{} {}", p.first, p.last),
        },
        PersonStyle::InitialLast => format!("{} {}", initial, p.last),
        PersonStyle::InitialDotLast => format!("{}. {}", initial, p.last),
        PersonStyle::Email { domain } => format!(
            "{}.{}@{}",
            p.first.to_lowercase().replace(' ', ""),
            p.last.to_lowercase().replace(' ', ""),
            domain
        ),
        PersonStyle::UserId => format!(
            "{}{}",
            initial.to_lowercase(),
            p.last.to_lowercase().replace([' ', '-'], "")
        ),
        PersonStyle::UpperLastCommaFirst => {
            format!("{}, {}", p.last.to_uppercase(), p.first.to_uppercase())
        }
    }
}

fn initial_of(s: &str) -> char {
    s.chars().next().unwrap_or('X')
}

/// Surface formats for a 10-digit North-American phone number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhoneStyle {
    /// "(780) 433-6545".
    Parenthesized,
    /// "+1 780 433 6545".
    International,
    /// "1-780-433-6545".
    Dashed,
    /// "780.433.6545".
    Dotted,
    /// "7804336545".
    Digits,
}

/// Renders the 10 digits (area code + 7 digits) in the requested style.
/// Panics if `digits` does not contain exactly 10 ASCII digits.
pub fn format_phone(digits: &str, style: PhoneStyle) -> String {
    assert_eq!(digits.len(), 10, "expected 10 digits, got {digits:?}");
    assert!(digits.bytes().all(|b| b.is_ascii_digit()));
    let area = &digits[0..3];
    let mid = &digits[3..6];
    let last = &digits[6..10];
    match style {
        PhoneStyle::Parenthesized => format!("({area}) {mid}-{last}"),
        PhoneStyle::International => format!("+1 {area} {mid} {last}"),
        PhoneStyle::Dashed => format!("1-{area}-{mid}-{last}"),
        PhoneStyle::Dotted => format!("{area}.{mid}.{last}"),
        PhoneStyle::Digits => digits.to_owned(),
    }
}

/// Surface formats for a calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DateStyle {
    /// "January 5, 2020".
    MonthNameDayYear,
    /// "2020-01-05".
    Iso,
    /// "05/01/2020" (day/month/year).
    DayMonthYearSlash,
    /// "Jan 5 2020".
    ShortMonth,
}

/// Renders a (year, month 1-12, day 1-31) triple in the requested style.
pub fn format_date(year: u32, month: u32, day: u32, style: DateStyle) -> String {
    assert!((1..=12).contains(&month), "month out of range: {month}");
    assert!((1..=31).contains(&day), "day out of range: {day}");
    let month_name = crate::corpus::MONTHS[(month - 1) as usize];
    match style {
        DateStyle::MonthNameDayYear => format!("{month_name} {day}, {year}"),
        DateStyle::Iso => format!("{year}-{month:02}-{day:02}"),
        DateStyle::DayMonthYearSlash => format!("{day:02}/{month:02}/{year}"),
        DateStyle::ShortMonth => format!("{} {} {}", &month_name[..3], day, year),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PersonName {
        PersonName::with_middle("Mario", "Alberto", "Nascimento")
    }

    #[test]
    fn person_formats() {
        let p = sample();
        assert_eq!(
            format_person(&p, PersonStyle::LastCommaFirst),
            "Nascimento, Mario A"
        );
        assert_eq!(
            format_person(&p, PersonStyle::FirstLast),
            "Mario Alberto Nascimento"
        );
        assert_eq!(format_person(&p, PersonStyle::InitialLast), "M Nascimento");
        assert_eq!(format_person(&p, PersonStyle::InitialDotLast), "M. Nascimento");
        assert_eq!(
            format_person(&p, PersonStyle::Email { domain: "ualberta.ca" }),
            "mario.nascimento@ualberta.ca"
        );
        assert_eq!(format_person(&p, PersonStyle::UserId), "mnascimento");
        assert_eq!(
            format_person(&p, PersonStyle::UpperLastCommaFirst),
            "NASCIMENTO, MARIO"
        );
    }

    #[test]
    fn person_without_middle() {
        let p = PersonName::new("Davood", "Rafiei");
        assert_eq!(format_person(&p, PersonStyle::LastCommaFirst), "Rafiei, Davood");
        assert_eq!(format_person(&p, PersonStyle::FirstLast), "Davood Rafiei");
    }

    #[test]
    fn hyphenated_last_name_user_id() {
        let p = PersonName::new("Andrzej", "Prus-Czarnecki");
        assert_eq!(format_person(&p, PersonStyle::UserId), "aprusczarnecki");
    }

    #[test]
    fn phone_formats_match_paper_intro() {
        assert_eq!(
            format_phone("7804323636", PhoneStyle::Parenthesized),
            "(780) 432-3636"
        );
        assert_eq!(
            format_phone("7804323636", PhoneStyle::International),
            "+1 780 432 3636"
        );
        assert_eq!(format_phone("7804323636", PhoneStyle::Dashed), "1-780-432-3636");
        assert_eq!(format_phone("7804323636", PhoneStyle::Dotted), "780.432.3636");
        assert_eq!(format_phone("7804323636", PhoneStyle::Digits), "7804323636");
    }

    #[test]
    #[should_panic(expected = "expected 10 digits")]
    fn phone_requires_ten_digits() {
        let _ = format_phone("12345", PhoneStyle::Digits);
    }

    #[test]
    fn date_formats() {
        assert_eq!(
            format_date(2020, 1, 5, DateStyle::MonthNameDayYear),
            "January 5, 2020"
        );
        assert_eq!(format_date(2020, 1, 5, DateStyle::Iso), "2020-01-05");
        assert_eq!(
            format_date(2020, 1, 5, DateStyle::DayMonthYearSlash),
            "05/01/2020"
        );
        assert_eq!(format_date(2020, 1, 5, DateStyle::ShortMonth), "Jan 5 2020");
    }

    #[test]
    #[should_panic(expected = "month out of range")]
    fn date_month_validated() {
        let _ = format_date(2020, 13, 1, DateStyle::Iso);
    }
}
