//! Repository-scale workload generator.
//!
//! GXJoin and QJoin evaluate joinability discovery over *table
//! repositories*: many candidate column pairs, most joinable under some
//! transformation, some not joinable at all. This generator emits such a
//! repository as N heterogeneous [`ColumnPair`]s for the batch join runner
//! (`tjoin_join::batch`):
//!
//! * joinable pairs cycle through six format families — person-name
//!   abbreviations, emails, phone numbers, dates, product codes, and user
//!   ids — each coverable by one or two string transformations over the
//!   unit language;
//! * a configurable fraction of rows per pair is *noise*: the target value
//!   is scrambled so no transformation of the source produces it (the rows
//!   stay in the golden mapping, capping attainable recall, exactly like
//!   the simulated web-tables benchmark);
//! * a configurable fraction of pairs are *decoys*: the target column is
//!   unrelated token gibberish with an empty golden mapping — a correct
//!   pipeline predicts nothing for them, and a support floor keeps
//!   accidental one-off rules out (`tests/paper_claims.rs` pins this).
//!
//! Generation is deterministic per seed (under the workspace's offline
//! `rand` shim — a different stream than upstream `StdRng`, see the shim
//! docs).

use crate::corpus;
use crate::realistic::{
    format_date, format_person, format_phone, DateStyle, PersonName, PersonStyle, PhoneStyle,
};
use crate::table::ColumnPair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the repository generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RepositoryConfig {
    /// Number of column pairs to emit.
    pub pairs: usize,
    /// Base number of rows per pair (each pair varies by up to +20 %).
    pub rows_per_pair: usize,
    /// Fraction of rows per joinable pair whose target value is scrambled
    /// beyond the reach of any string transformation (`0.0..=1.0`).
    pub noise: f64,
    /// Fraction of pairs emitted as non-joinable decoys (`0.0..=1.0`),
    /// spread evenly through the repository.
    pub decoy_fraction: f64,
    /// Row-count multiplier (`>= 1.0`) applied to the repository's *first*
    /// pair, making it dominate the workload: a skew of 8 on a 100-row base
    /// yields one ~800-row pair among ~100-row peers — the shape where a
    /// static thread split strands workers and the batch runner's
    /// work-stealing queue earns its keep. `1.0` (the default) disables the
    /// skew and reproduces the pre-knob generation exactly.
    pub skew: f64,
}

impl Default for RepositoryConfig {
    fn default() -> Self {
        Self {
            pairs: 12,
            rows_per_pair: 100,
            noise: 0.05,
            decoy_fraction: 0.25,
            skew: 1.0,
        }
    }
}

/// The format families joinable pairs cycle through.
const FAMILIES: [Family; 6] = [
    Family::NameAbbrev,
    Family::Email,
    Family::Phone,
    Family::Date,
    Family::ProductCode,
    Family::UserId,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    NameAbbrev,
    Email,
    Phone,
    Date,
    ProductCode,
    UserId,
}

impl Family {
    fn name(self) -> &'static str {
        match self {
            Family::NameAbbrev => "names",
            Family::Email => "emails",
            Family::Phone => "phones",
            Family::Date => "dates",
            Family::ProductCode => "products",
            Family::UserId => "userids",
        }
    }
}

impl RepositoryConfig {
    /// Convenience constructor for the common (pairs, rows) shape with the
    /// default noise and decoy mix.
    pub fn new(pairs: usize, rows_per_pair: usize) -> Self {
        Self {
            pairs,
            rows_per_pair,
            ..Self::default()
        }
    }

    /// Builder-style setter for the noise fraction.
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Builder-style setter for the decoy fraction.
    pub fn with_decoys(mut self, decoy_fraction: f64) -> Self {
        self.decoy_fraction = decoy_fraction;
        self
    }

    /// Builder-style setter for the first-pair skew multiplier.
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.skew = skew;
        self
    }

    /// Generates the repository deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Vec<ColumnPair> {
        assert!(
            (0.0..=1.0).contains(&self.noise),
            "noise must be within [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.decoy_fraction),
            "decoy_fraction must be within [0, 1]"
        );
        assert!(self.rows_per_pair >= 1, "rows_per_pair must be at least 1");
        assert!(
            self.skew >= 1.0 && self.skew.is_finite(),
            "skew must be a finite multiplier >= 1.0"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let decoys = (self.pairs as f64 * self.decoy_fraction).round() as usize;
        let mut out = Vec::with_capacity(self.pairs);
        let mut family_cursor = 0usize;
        for i in 0..self.pairs {
            // Bresenham spread: pair i is a decoy when the running decoy
            // quota crosses an integer at i.
            let is_decoy =
                self.pairs > 0 && ((i + 1) * decoys) / self.pairs > (i * decoys) / self.pairs;
            let rows = self.rows_per_pair + rng.gen_range(0..=self.rows_per_pair / 5);
            // The skew multiplies the first pair's row count after the
            // jitter draw; `skew = 1.0` reproduces the pre-knob generation
            // exactly. (A larger first pair consumes more rng draws, so
            // later pairs' *content* shifts with the skew — generation
            // stays deterministic per (seed, config).)
            let rows = if i == 0 {
                (rows as f64 * self.skew).round() as usize
            } else {
                rows
            };
            if is_decoy {
                out.push(decoy_pair(i, rows, &mut rng));
            } else {
                let family = FAMILIES[family_cursor % FAMILIES.len()];
                family_cursor += 1;
                out.push(joinable_pair(i, family, rows, self.noise, &mut rng));
            }
        }
        out
    }
}

/// Ground-truth decoy label for generated repositories: the non-joinable
/// decoys are exactly the pairs with an *empty* golden mapping — joinable
/// pairs always carry a full-length golden mapping, even for noise rows
/// (noise caps attainable recall; it never empties the mapping). Discovery
/// quality — shortlist recall over joinable pairs, precision against
/// decoys — is measured against this label rather than the `-decoy` name
/// suffix, so hand-built repositories get the same treatment.
pub fn is_decoy(pair: &ColumnPair) -> bool {
    pair.golden.is_empty()
}

/// Generates `count` fresh joinable rows in the same format family as a
/// generated pair — the raw material for append workloads: every returned
/// `(source, target)` row is the same entity in the pair's two surface
/// formats, coverable by the same transformations as the pair's existing
/// rows.
///
/// The family is recovered from the generated pair's `-<family>` name
/// suffix; returns `None` for decoys and for hand-built pairs whose name
/// carries no known family. Deterministic per `(pair name, seed)` — the
/// rows do not depend on the pair's content, so repeated calls with
/// distinct seeds extend a pair without replaying its generation stream.
pub fn joinable_rows(pair: &ColumnPair, count: usize, seed: u64) -> Option<Vec<(String, String)>> {
    let suffix = pair.name.rsplit('-').next()?;
    let family = FAMILIES.iter().copied().find(|f| f.name() == suffix)?;
    let mut rng = StdRng::seed_from_u64(seed);
    Some((0..count).map(|_| family_row(family, &mut rng)).collect())
}

fn random_person(rng: &mut StdRng) -> PersonName {
    let first = corpus::FIRST_NAMES[rng.gen_range(0..corpus::FIRST_NAMES.len())];
    let last = corpus::LAST_NAMES[rng.gen_range(0..corpus::LAST_NAMES.len())];
    PersonName::new(first, last)
}

/// One joinable row of a family: `(source_value, target_value)`, same
/// entity in two surface formats, coverable by a string transformation.
fn family_row(family: Family, rng: &mut StdRng) -> (String, String) {
    match family {
        Family::NameAbbrev => {
            let p = random_person(rng);
            let src = format_person(&p, PersonStyle::LastCommaFirst);
            let tgt = if rng.gen_bool(0.6) {
                format_person(&p, PersonStyle::InitialLast)
            } else {
                format_person(&p, PersonStyle::InitialDotLast)
            };
            (src, tgt)
        }
        Family::Email => {
            let p = random_person(rng);
            (
                format_person(&p, PersonStyle::LastCommaFirst),
                format_person(&p, PersonStyle::Email { domain: "example.org" }),
            )
        }
        Family::Phone => {
            let area = ["780", "403", "587", "825"][rng.gen_range(0..4)];
            let digits = format!("{}{:07}", area, rng.gen_range(0..10_000_000u32));
            let src = format_phone(&digits, PhoneStyle::Parenthesized);
            let tgt = if rng.gen_bool(0.5) {
                format_phone(&digits, PhoneStyle::Dashed)
            } else {
                format_phone(&digits, PhoneStyle::International)
            };
            (src, tgt)
        }
        Family::Date => {
            let (y, m, d) = (
                rng.gen_range(1950..2024),
                rng.gen_range(1..=12),
                rng.gen_range(1..=28),
            );
            (
                format_date(y, m, d, DateStyle::DayMonthYearSlash),
                format_date(y, m, d, DateStyle::Iso),
            )
        }
        Family::ProductCode => {
            // Twelve brands keep the matcher's brand-gram fan-out small
            // (candidate sets ~8 rows per brand at 100 rows), and the
            // uniform 3-character series keeps the pair coverable by ONE
            // rule — so its support stays clear of the paper's 5% floor
            // instead of splitting across per-length variants.
            let brand = [
                "Nova", "Apex", "Zenith", "Orion", "Vertex", "Atlas", "Quasar", "Pulsar",
                "Nimbus", "Helix", "Argon", "Krypton",
            ][rng.gen_range(0..12)];
            let series = ["Pro", "Air", "Max"][rng.gen_range(0..3)];
            let num = rng.gen_range(100..999);
            (format!("{brand} {series}-{num}"), format!("{brand}{series}{num}"))
        }
        Family::UserId => {
            let p = random_person(rng);
            (
                format_person(&p, PersonStyle::LastCommaFirst),
                format_person(&p, PersonStyle::UserId),
            )
        }
    }
}

/// Scrambles a target value beyond the reach of any string transformation
/// of its source (character swap, drop, or an appended marker). The marker
/// carries a per-row random number so that no single literal-suffix rule
/// can cover the marked rows collectively — a uniform marker would be
/// reachable by `<covering rule, Literal(marker)>` and clear the support
/// floor once the noise fraction is high enough, silently re-joining rows
/// this module promises are unjoinable.
fn noisify(value: &str, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = value.chars().collect();
    match rng.gen_range(0..3) {
        0 => {
            if chars.len() >= 4 {
                let i = rng.gen_range(1..chars.len() - 2);
                chars.swap(i, i + 1);
            }
            chars.into_iter().collect()
        }
        1 => {
            if chars.len() >= 3 {
                let i = rng.gen_range(1..chars.len() - 1);
                chars.remove(i);
            }
            chars.into_iter().collect()
        }
        _ => format!("{value} ({:03})", rng.gen_range(0..1000u32)),
    }
}

fn joinable_pair(
    index: usize,
    family: Family,
    rows: usize,
    noise: f64,
    rng: &mut StdRng,
) -> ColumnPair {
    let mut source = Vec::with_capacity(rows);
    let mut target = Vec::with_capacity(rows);
    for _ in 0..rows {
        let (src, tgt) = family_row(family, rng);
        let tgt = if rng.gen_bool(noise) { noisify(&tgt, rng) } else { tgt };
        source.push(src);
        target.push(tgt);
    }
    ColumnPair::aligned(format!("repo-{index:03}-{}", family.name()), source, target)
}

/// A non-joinable decoy: real-looking source values against token gibberish
/// targets sharing no transformable structure, with an empty golden
/// mapping.
fn decoy_pair(index: usize, rows: usize, rng: &mut StdRng) -> ColumnPair {
    let mut source = Vec::with_capacity(rows);
    let mut target = Vec::with_capacity(rows);
    for _ in 0..rows {
        let p = random_person(rng);
        source.push(format_person(&p, PersonStyle::LastCommaFirst));
        let letters: String = (0..4)
            .map(|_| (b'q' + rng.gen_range(0..8u8)) as char)
            .collect();
        target.push(format!("{letters}-{:04}-{}", rng.gen_range(0..10_000u32), rng.gen_range(0..100u32)));
    }
    ColumnPair::new(format!("repo-{index:03}-decoy"), source, target, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let config = RepositoryConfig::new(8, 30);
        assert_eq!(config.generate(5), config.generate(5));
        assert_ne!(config.generate(5)[0].source, config.generate(6)[0].source);
    }

    #[test]
    fn decoy_quota_and_spread() {
        let repo = RepositoryConfig::new(12, 10).with_decoys(0.25).generate(1);
        let decoys: Vec<usize> = repo
            .iter()
            .enumerate()
            .filter(|(_, p)| p.name.ends_with("-decoy"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(decoys.len(), 3);
        // Spread through the repository, not bunched at the tail.
        assert!(decoys[0] < 6, "decoys bunched: {decoys:?}");
        for p in &repo {
            if p.name.ends_with("-decoy") {
                assert!(p.golden.is_empty());
            } else {
                assert_eq!(p.golden.len(), p.source.len());
            }
        }
    }

    #[test]
    fn decoy_label_matches_the_name_convention() {
        let repo = RepositoryConfig::new(12, 10).with_decoys(0.25).generate(7);
        for p in &repo {
            assert_eq!(is_decoy(p), p.name.ends_with("-decoy"), "{}", p.name);
        }
    }

    #[test]
    fn families_are_heterogeneous() {
        let repo = RepositoryConfig::new(12, 10).with_decoys(0.0).generate(2);
        let families: std::collections::HashSet<&str> = repo
            .iter()
            .map(|p| p.name.rsplit('-').next().unwrap())
            .collect();
        assert!(families.len() >= 6, "families: {families:?}");
    }

    #[test]
    fn noise_rows_present_at_requested_rate() {
        let noisy = RepositoryConfig::new(4, 200).with_noise(0.5).with_decoys(0.0).generate(3);
        let clean = RepositoryConfig::new(4, 200).with_noise(0.0).with_decoys(0.0).generate(3);
        // With 50% noise the two repositories must disagree on many target
        // values; with 0% they are fully structured.
        assert_ne!(noisy[0].target, clean[0].target);
    }

    #[test]
    fn row_counts_near_base() {
        let repo = RepositoryConfig::new(6, 50).generate(4);
        for p in &repo {
            assert!((50..=60).contains(&p.source.len()), "{} rows", p.source.len());
            assert_eq!(p.source.len(), p.target.len());
        }
    }

    #[test]
    fn skew_inflates_the_first_pair() {
        let base = RepositoryConfig::new(6, 50).with_decoys(0.0);
        let flat = base.clone().generate(9);
        let skewed = base.clone().with_skew(8.0).generate(9);
        // The first pair dominates: exactly 8x its unskewed row count,
        // while every other pair keeps the base-range count.
        assert_eq!(skewed[0].source.len(), flat[0].source.len() * 8);
        for p in skewed.iter().skip(1) {
            assert!((50..=60).contains(&p.source.len()), "{} rows", p.source.len());
            assert_eq!(p.source.len(), p.target.len());
        }
        assert_eq!(skewed, base.clone().with_skew(8.0).generate(9));
        // The explicit default skew reproduces the pre-knob generation.
        assert_eq!(flat, base.with_skew(1.0).generate(9));
    }

    #[test]
    #[should_panic(expected = "skew")]
    fn invalid_skew_rejected() {
        let _ = RepositoryConfig::new(2, 10).with_skew(0.5).generate(0);
    }

    #[test]
    #[should_panic(expected = "noise")]
    fn invalid_noise_rejected() {
        let _ = RepositoryConfig::new(2, 10).with_noise(1.5).generate(0);
    }

    #[test]
    fn empty_repository_allowed() {
        assert!(RepositoryConfig::new(0, 10).generate(0).is_empty());
    }
}
