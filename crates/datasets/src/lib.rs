//! # tjoin-datasets
//!
//! Dataset substrate for the reproduction of *"Efficiently Transforming
//! Tables for Joinability"*:
//!
//! * [`table`] — table and column-pair types shared across the workspace.
//! * [`synthetic`] — the paper's synthetic benchmark generator (Section 6.1:
//!   Synth-N and Synth-NL table pairs produced by applying randomly drawn
//!   transformations to random alphanumeric source rows).
//! * [`realistic`] — *simulated* stand-ins for the paper's three real-world
//!   benchmarks (Web tables, Spreadsheet/FlashFill, Open data). The original
//!   data is not redistributable; these generators produce table pairs with
//!   the same joinability structure (multi-rule covers, noise, skewed n-gram
//!   distributions) so that every experiment exercises the same code paths.
//!   The substitutions are documented in `DESIGN.md`.
//! * [`repository`] — the repository-scale workload generator: N
//!   heterogeneous column pairs (names / phones / dates / web formats, with
//!   controllable noise and non-joinable decoys) for the batch join runner.
//! * [`workload`] — request-stream sequences over repositories (hot-skewed
//!   repeat requests) for the resident-corpus serving layer (`tjoin-serve`).
//! * [`corpus`] — small embedded word lists (names, departments, streets)
//!   used by the realistic generators.
//! * [`io`] — minimal CSV/TSV reading and writing for the table types.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corpus;
pub mod io;
pub mod realistic;
pub mod repository;
pub mod synthetic;
pub mod table;
pub mod workload;

pub use io::DatasetError;
pub use repository::{is_decoy, joinable_rows, RepositoryConfig};
pub use workload::{
    AppendStep, AppendWorkload, AppendWorkloadConfig, RequestWorkload, RequestWorkloadConfig,
};
pub use synthetic::{SyntheticConfig, SyntheticDataset};
pub use table::{row_id, ArenaPair, ColumnPair, Table, TablePair};

/// The benchmark families evaluated in the paper (Table 1, 2, 3, 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkKind {
    /// 31 web table pairs (simulated).
    WebTables,
    /// 108 spreadsheet / FlashFill-style pairs (simulated).
    Spreadsheet,
    /// Open-government address data joined with white-pages style listings
    /// (simulated).
    OpenData,
    /// Synth-N: `rows` rows with source lengths in 20..=35.
    Synth {
        /// Number of rows per table.
        rows: usize,
    },
    /// Synth-NL: `rows` rows with source lengths in 40..=70.
    SynthLong {
        /// Number of rows per table.
        rows: usize,
    },
}

impl BenchmarkKind {
    /// The label the paper uses for this dataset in its tables.
    pub fn label(&self) -> String {
        match self {
            BenchmarkKind::WebTables => "Web tables".to_owned(),
            BenchmarkKind::Spreadsheet => "Spreadsheet".to_owned(),
            BenchmarkKind::OpenData => "Open data".to_owned(),
            BenchmarkKind::Synth { rows } => format!("Synth-{rows}"),
            BenchmarkKind::SynthLong { rows } => format!("Synth-{rows}L"),
        }
    }

    /// Generates the table pairs for this benchmark with a deterministic seed.
    pub fn generate(&self, seed: u64) -> Vec<TablePair> {
        match self {
            BenchmarkKind::WebTables => realistic::web_tables(seed),
            BenchmarkKind::Spreadsheet => realistic::spreadsheet(seed),
            BenchmarkKind::OpenData => vec![realistic::open_data(seed, 3000)],
            BenchmarkKind::Synth { rows } => {
                vec![SyntheticConfig::synth(*rows).generate(seed).pair]
            }
            BenchmarkKind::SynthLong { rows } => {
                vec![SyntheticConfig::synth_long(*rows).generate(seed).pair]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(BenchmarkKind::WebTables.label(), "Web tables");
        assert_eq!(BenchmarkKind::Synth { rows: 50 }.label(), "Synth-50");
        assert_eq!(BenchmarkKind::SynthLong { rows: 500 }.label(), "Synth-500L");
    }

    #[test]
    fn generate_small_benchmarks() {
        let pairs = BenchmarkKind::Synth { rows: 10 }.generate(1);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].column_pair().source.len(), 10);
    }
}
