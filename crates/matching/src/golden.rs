//! Golden (oracle) row matching.
//!
//! The paper evaluates transformation discovery both on pairs found by its
//! n-gram matcher and on ground-truth pairs ("golden row matching"); the
//! latter isolates synthesis quality from row-matching noise.

use tjoin_datasets::ColumnPair;

/// Returns the ground-truth joinable pairs of a column pair as
/// `(source_row, target_row)` indices — simply the golden mapping carried by
/// the dataset, validated against the column lengths.
pub fn golden_pairs(pair: &ColumnPair) -> Vec<(u32, u32)> {
    pair.golden
        .iter()
        .copied()
        .filter(|&(s, t)| (s as usize) < pair.source.len() && (t as usize) < pair.target.len())
        .collect()
}

/// Materializes golden pairs as (source value, target value) strings, the
/// form consumed by the synthesis engine.
pub fn golden_value_pairs(pair: &ColumnPair) -> Vec<(String, String)> {
    golden_pairs(pair)
        .into_iter()
        .map(|(s, t)| {
            (
                pair.source[s as usize].clone(),
                pair.target[t as usize].clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> ColumnPair {
        ColumnPair {
            name: "t".into(),
            source: vec!["a".into(), "b".into()],
            target: vec!["A".into(), "B".into()],
            golden: vec![(0, 0), (1, 1), (7, 9)], // last one is out of range
        }
    }

    #[test]
    fn out_of_range_golden_entries_dropped() {
        assert_eq!(golden_pairs(&pair()), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn value_pairs_materialized() {
        assert_eq!(
            golden_value_pairs(&pair()),
            vec![("a".to_owned(), "A".to_owned()), ("b".to_owned(), "B".to_owned())]
        );
    }

    #[test]
    fn empty_golden() {
        let p = ColumnPair {
            golden: vec![],
            ..pair()
        };
        assert!(golden_pairs(&p).is_empty());
        assert!(golden_value_pairs(&p).is_empty());
    }
}
