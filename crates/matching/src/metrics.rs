//! Row-matching quality metrics (precision, recall, F1) — Table 1 of the
//! paper.

use crate::ngram::RowMatch;
use serde::{Deserialize, Serialize};

/// Precision / recall / F1 of a candidate pair set against a golden mapping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MatchingMetrics {
    /// Number of candidate pairs produced.
    pub candidates: usize,
    /// Number of golden pairs.
    pub golden: usize,
    /// Candidate pairs that are also golden.
    pub true_positives: usize,
    /// Precision = TP / candidates.
    pub precision: f64,
    /// Recall = TP / golden.
    pub recall: f64,
    /// F1 = harmonic mean of precision and recall.
    pub f1: f64,
}

/// Evaluates candidate pairs against the golden mapping.
pub fn evaluate_pairs(candidates: &[RowMatch], golden: &[(u32, u32)]) -> MatchingMetrics {
    let golden_set: std::collections::HashSet<(u32, u32)> = golden.iter().copied().collect();
    let candidate_set: std::collections::HashSet<(u32, u32)> = candidates
        .iter()
        .map(|m| (m.source_row, m.target_row))
        .collect();
    let true_positives = candidate_set.intersection(&golden_set).count();
    let precision = if candidate_set.is_empty() {
        0.0
    } else {
        true_positives as f64 / candidate_set.len() as f64
    };
    let recall = if golden_set.is_empty() {
        0.0
    } else {
        true_positives as f64 / golden_set.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    MatchingMetrics {
        candidates: candidate_set.len(),
        golden: golden_set.len(),
        true_positives,
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(s: u32, t: u32) -> RowMatch {
        RowMatch {
            source_row: s,
            target_row: t,
        }
    }

    #[test]
    fn perfect_matching() {
        let golden = vec![(0, 0), (1, 1)];
        let metrics = evaluate_pairs(&[m(0, 0), m(1, 1)], &golden);
        assert_eq!(metrics.true_positives, 2);
        assert!((metrics.precision - 1.0).abs() < 1e-12);
        assert!((metrics.recall - 1.0).abs() < 1e-12);
        assert!((metrics.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_matching() {
        let golden = vec![(0, 0), (1, 1), (2, 2), (3, 3)];
        // 2 true positives, 2 false positives, 2 missed.
        let metrics = evaluate_pairs(&[m(0, 0), m(1, 1), m(0, 3), m(2, 1)], &golden);
        assert_eq!(metrics.true_positives, 2);
        assert!((metrics.precision - 0.5).abs() < 1e-12);
        assert!((metrics.recall - 0.5).abs() < 1e-12);
        assert!((metrics.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_candidates_or_golden() {
        let metrics = evaluate_pairs(&[], &[(0, 0)]);
        assert_eq!(metrics.precision, 0.0);
        assert_eq!(metrics.recall, 0.0);
        assert_eq!(metrics.f1, 0.0);
        let metrics = evaluate_pairs(&[m(0, 0)], &[]);
        assert_eq!(metrics.recall, 0.0);
        assert_eq!(metrics.f1, 0.0);
    }

    #[test]
    fn duplicate_candidates_counted_once() {
        let golden = vec![(0, 0)];
        let metrics = evaluate_pairs(&[m(0, 0), m(0, 0), m(0, 0)], &golden);
        assert_eq!(metrics.candidates, 1);
        assert!((metrics.precision - 1.0).abs() < 1e-12);
    }
}
