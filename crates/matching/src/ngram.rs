//! The representative-n-gram row matcher (Algorithm 1 of the paper).
//!
//! For each source row and each n-gram size `n0 ≤ n ≤ nmax`, the n-gram with
//! the highest Rscore (rare in both columns, equations 1–2) is the row's
//! *representative* of that size; every target row containing at least one
//! representative becomes a candidate joinable pair. An inverted n-gram
//! index over the target column makes the lookup O(1) per representative.

use serde::{Deserialize, Serialize};
use tjoin_datasets::ColumnPair;
use tjoin_text::{
    char_ngrams, normalize_for_matching, ColumnStats, FxHashSet, NGramIndex, NormalizeOptions,
};

/// Configuration of the [`NGramMatcher`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NGramMatcherConfig {
    /// Smallest representative n-gram size (the paper tunes `n0 = 4`).
    pub n_min: usize,
    /// Largest representative n-gram size (the paper uses 20, "roughly up to
    /// half the length of the input rows").
    pub n_max: usize,
    /// Normalization applied to both columns before matching.
    pub normalize: NormalizeOptions,
    /// Optional cap on the number of target rows a single representative may
    /// match before it is considered non-discriminative and skipped
    /// (`None` = no cap). This is an engineering guard for pathological
    /// columns; the paper's experiments run uncapped.
    pub max_matches_per_representative: Option<usize>,
}

impl Default for NGramMatcherConfig {
    fn default() -> Self {
        Self {
            n_min: 4,
            n_max: 20,
            normalize: NormalizeOptions::default(),
            max_matches_per_representative: None,
        }
    }
}

/// A candidate joinable row pair produced by the matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RowMatch {
    /// Source row index.
    pub source_row: u32,
    /// Target row index.
    pub target_row: u32,
}

/// The representative-n-gram row matcher.
#[derive(Debug, Clone)]
pub struct NGramMatcher {
    config: NGramMatcherConfig,
}

impl NGramMatcher {
    /// Creates a matcher with the given configuration.
    pub fn new(config: NGramMatcherConfig) -> Self {
        assert!(config.n_min >= 1, "n_min must be at least 1");
        assert!(config.n_min <= config.n_max, "n_min must not exceed n_max");
        Self { config }
    }

    /// Creates a matcher with the paper's default parameters (`n0 = 4`,
    /// `nmax = 20`).
    pub fn with_defaults() -> Self {
        Self::new(NGramMatcherConfig::default())
    }

    /// The matcher configuration.
    pub fn config(&self) -> &NGramMatcherConfig {
        &self.config
    }

    /// Chooses which column should be treated as the source: the paper tags
    /// the more informative column — approximated by the longer average value
    /// length — as the source. Returns `true` when the pair's columns should
    /// be swapped (i.e. the target column is the more informative one).
    pub fn should_swap(pair: &ColumnPair) -> bool {
        let avg = |col: &[String]| {
            if col.is_empty() {
                return 0.0;
            }
            col.iter().map(|v| v.chars().count()).sum::<usize>() as f64 / col.len() as f64
        };
        avg(&pair.target) > avg(&pair.source)
    }

    /// Runs Algorithm 1: finds candidate joinable row pairs between the
    /// source and target columns of `pair`.
    pub fn find_candidates(&self, pair: &ColumnPair) -> Vec<RowMatch> {
        let source: Vec<String> = pair
            .source
            .iter()
            .map(|v| normalize_for_matching(v, &self.config.normalize))
            .collect();
        let target: Vec<String> = pair
            .target
            .iter()
            .map(|v| normalize_for_matching(v, &self.config.normalize))
            .collect();

        // Column statistics for IRF on both sides and the inverted index on
        // the target column for the containment lookup.
        let source_stats = ColumnStats::build(&source, self.config.n_min, self.config.n_max);
        let target_stats = ColumnStats::build(&target, self.config.n_min, self.config.n_max);
        let target_index = NGramIndex::build(&target, self.config.n_min, self.config.n_max);

        let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
        let mut out: Vec<RowMatch> = Vec::new();

        for n in self.config.n_min..=self.config.n_max {
            for (row_id, row) in source.iter().enumerate() {
                let grams = char_ngrams(row, n);
                if grams.is_empty() {
                    continue;
                }
                // argmax Rscore over the row's n-grams of this size.
                let mut best: Option<(&str, f64)> = None;
                for g in grams {
                    let score = source_stats.irf(g) * target_stats.irf(g);
                    if score <= 0.0 {
                        continue;
                    }
                    match best {
                        Some((_, s)) if s >= score => {}
                        _ => best = Some((g, score)),
                    }
                }
                let Some((rep, _)) = best else { continue };
                let matches = target_index.rows_containing(rep);
                if let Some(cap) = self.config.max_matches_per_representative {
                    if matches.len() > cap {
                        continue;
                    }
                }
                for &t in matches {
                    if seen.insert((row_id as u32, t)) {
                        out.push(RowMatch {
                            source_row: row_id as u32,
                            target_row: t,
                        });
                    }
                }
            }
        }
        out
    }

    /// Materializes candidate pairs as (source value, target value) strings —
    /// the input format of the synthesis engine. Values are the *original*
    /// (un-normalized) cell contents; the engine applies its own
    /// normalization.
    pub fn candidate_value_pairs(&self, pair: &ColumnPair) -> Vec<(String, String)> {
        self.find_candidates(pair)
            .into_iter()
            .map(|m| {
                (
                    pair.source[m.source_row as usize].clone(),
                    pair.target[m.target_row as usize].clone(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staff_pair() -> ColumnPair {
        ColumnPair::aligned(
            "staff",
            vec![
                "Rafiei, Davood".into(),
                "Nascimento, Mario A".into(),
                "Gingrich, Douglas M".into(),
                "Prus-Czarnecki, Andrzej".into(),
                "Bowling, Michael".into(),
                "Gosgnach, Simon".into(),
            ],
            vec![
                "D Rafiei".into(),
                "M A Nascimento".into(),
                "D Gingrich".into(),
                "A Prus-czarnecki".into(),
                "M Bowling".into(),
                "S Gosgnach".into(),
            ],
        )
    }

    #[test]
    fn finds_the_true_pairs_on_the_paper_example() {
        let matcher = NGramMatcher::with_defaults();
        let found = matcher.find_candidates(&staff_pair());
        // Every golden pair must be among the candidates (high recall).
        for i in 0..6u32 {
            assert!(
                found
                    .iter()
                    .any(|m| m.source_row == i && m.target_row == i),
                "golden pair {i} missing from {found:?}"
            );
        }
    }

    #[test]
    fn representative_ngram_limits_false_matches() {
        // A shared suffix ("@ualberta.ca") must not match every row to every
        // other row: distinctive user names dominate the Rscore.
        let pair = ColumnPair::aligned(
            "emails",
            vec![
                "Rafiei, Davood".into(),
                "Bowling, Michael".into(),
                "Gosgnach, Simon".into(),
            ],
            vec![
                "davood.rafiei@ualberta.ca".into(),
                "michael.bowling@ualberta.ca".into(),
                "simon.gosgnach@ualberta.ca".into(),
            ],
        );
        let matcher = NGramMatcher::with_defaults();
        let found = matcher.find_candidates(&pair);
        let false_matches = found
            .iter()
            .filter(|m| m.source_row != m.target_row)
            .count();
        assert_eq!(false_matches, 0, "false matches: {found:?}");
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn no_candidates_for_disjoint_columns() {
        let pair = ColumnPair::aligned(
            "disjoint",
            vec!["aaaaaa".into(), "bbbbbb".into()],
            vec!["cccccc".into(), "dddddd".into()],
        );
        let matcher = NGramMatcher::with_defaults();
        assert!(matcher.find_candidates(&pair).is_empty());
    }

    #[test]
    fn value_pairs_use_original_strings() {
        let matcher = NGramMatcher::with_defaults();
        let values = matcher.candidate_value_pairs(&staff_pair());
        assert!(values
            .iter()
            .any(|(s, t)| s == "Rafiei, Davood" && t == "D Rafiei"));
    }

    #[test]
    fn should_swap_picks_longer_column_as_source() {
        let pair = ColumnPair::aligned(
            "x",
            vec!["ab".into(), "cd".into()],
            vec!["a much longer descriptive value".into(), "another long one".into()],
        );
        assert!(NGramMatcher::should_swap(&pair));
        assert!(!NGramMatcher::should_swap(&staff_pair()));
    }

    #[test]
    fn representative_cap_skips_promiscuous_grams() {
        // All targets share the gram "aaaa"; with a cap of 1 the matcher
        // refuses to expand it.
        let pair = ColumnPair::aligned(
            "caps",
            vec!["aaaa x".into(), "aaaa y".into()],
            vec!["aaaa 1".into(), "aaaa 2".into()],
        );
        let capped = NGramMatcher::new(NGramMatcherConfig {
            max_matches_per_representative: Some(1),
            ..NGramMatcherConfig::default()
        });
        assert!(capped.find_candidates(&pair).is_empty());
        let uncapped = NGramMatcher::with_defaults();
        assert_eq!(uncapped.find_candidates(&pair).len(), 4);
    }

    #[test]
    fn duplicate_pairs_not_reported_twice() {
        let matcher = NGramMatcher::with_defaults();
        let found = matcher.find_candidates(&staff_pair());
        let set: std::collections::HashSet<(u32, u32)> = found
            .iter()
            .map(|m| (m.source_row, m.target_row))
            .collect();
        assert_eq!(set.len(), found.len());
    }

    #[test]
    #[should_panic(expected = "n_min")]
    fn invalid_config_rejected() {
        let _ = NGramMatcher::new(NGramMatcherConfig {
            n_min: 0,
            ..NGramMatcherConfig::default()
        });
    }
}
