//! The representative-n-gram row matcher (Algorithm 1 of the paper), as a
//! planned parallel scan.
//!
//! For each source row and each n-gram size `n0 ≤ n ≤ nmax`, the n-gram with
//! the highest Rscore (rare in both columns, equations 1–2) is the row's
//! *representative* of that size; every target row containing at least one
//! representative becomes a candidate joinable pair. An inverted n-gram
//! index over the target column makes the lookup O(1) per representative.
//!
//! # Execution plan
//!
//! The scan runs in two phases, mirroring the synthesis core's planned
//! coverage execution (PR 3):
//!
//! 1. **Shared read-only state, built once.** Both columns are normalized,
//!    then [`ColumnStats`] for the two IRF sides and the target
//!    [`NGramIndex`] are constructed a single time and shared by every
//!    worker — the expensive indexing work is independent of the thread
//!    count. At repository scale, [`NGramMatcher::find_candidates_in`]
//!    serves this state from a shared [`GramCorpus`] instead of rebuilding
//!    it per call, so a column referenced by k pairs derives its
//!    normalization, stats, and index exactly once.
//! 2. **Row-chunked scan.** Source rows are split into contiguous chunks
//!    across [`NGramMatcherConfig::threads`] workers (the same thread-budget
//!    convention as `SynthesisConfig::threads`). Each worker scans its rows
//!    with per-size representative selection *fused into one pass per row*:
//!    the row's char boundaries are computed once and every size slides a
//!    window over them, instead of re-extracting (and re-allocating) the
//!    n-gram list per size as the retained oracle does.
//!
//! Determinism: candidate dedup keys are `(source_row, target_row)`, so the
//! oracle's global seen-set only ever rejects repeats *within* a source row
//! — per-row scans are independent. Each worker records, per row, the newly
//! matched target rows grouped by the size that found them; the final
//! assembly emits them in the oracle's size-major order (sizes outer, rows
//! inner). The output is therefore bit-identical to
//! [`crate::reference::find_candidates_reference`] — same pairs, same order
//! — at any thread count, which `crates/join/tests/proptest_join.rs`
//! enforces differentially.

use serde::{Deserialize, Serialize};
use std::fmt;
use tjoin_datasets::{row_id, ArenaPair, ColumnPair};
use tjoin_text::{
    chunk_map_rows_budgeted, normalize_for_matching, ArenaError, BudgetExceeded, BudgetToken,
    CellText, ColumnArena, ColumnStats, CorpusFailure, FxHashSet, GramCorpus, NGramIndex,
    NormalizeOptions,
};

/// Why a fallible matcher call ([`NGramMatcher::try_find_candidates`])
/// aborted instead of producing candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchAbort {
    /// The pair's [`BudgetToken`] tripped (deadline or admission cap).
    Budget(BudgetExceeded),
    /// A shared-corpus artifact this pair depends on has a sticky build
    /// failure (contained panic recorded in the corpus cache).
    Corpus(CorpusFailure),
}

impl fmt::Display for MatchAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchAbort::Budget(cause) => write!(f, "matching aborted: {cause}"),
            MatchAbort::Corpus(failure) => write!(f, "matching aborted: {failure}"),
        }
    }
}

impl From<BudgetExceeded> for MatchAbort {
    fn from(cause: BudgetExceeded) -> Self {
        MatchAbort::Budget(cause)
    }
}

impl From<CorpusFailure> for MatchAbort {
    fn from(failure: CorpusFailure) -> Self {
        MatchAbort::Corpus(failure)
    }
}

/// Configuration of the [`NGramMatcher`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NGramMatcherConfig {
    /// Smallest representative n-gram size (the paper tunes `n0 = 4`).
    pub n_min: usize,
    /// Largest representative n-gram size (the paper uses 20, "roughly up to
    /// half the length of the input rows").
    pub n_max: usize,
    /// Normalization applied to both columns before matching.
    pub normalize: NormalizeOptions,
    /// Optional cap on the number of target rows a single representative may
    /// match before it is considered non-discriminative and skipped
    /// (`None` = no cap). This is an engineering guard for pathological
    /// columns; the paper's experiments run uncapped.
    pub max_matches_per_representative: Option<usize>,
    /// Number of worker threads for the row scan (1 = sequential) — the
    /// workspace thread-budget convention shared with
    /// `SynthesisConfig::threads`. Output is bit-identical at any value.
    pub threads: usize,
}

impl Default for NGramMatcherConfig {
    fn default() -> Self {
        Self {
            n_min: 4,
            n_max: 20,
            normalize: NormalizeOptions::default(),
            max_matches_per_representative: None,
            threads: 1,
        }
    }
}

impl NGramMatcherConfig {
    /// Builder-style setter for the thread count (clamped to at least one).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// A candidate joinable row pair produced by the matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RowMatch {
    /// Source row index.
    pub source_row: u32,
    /// Target row index.
    pub target_row: u32,
}

/// One source row's scan result: for each n-gram size whose representative
/// matched something new, the newly matched target rows in index-lookup
/// order. Sizes appear in increasing order.
type RowHits = Vec<(usize, Vec<u32>)>;

/// The representative-n-gram row matcher.
#[derive(Debug, Clone)]
pub struct NGramMatcher {
    config: NGramMatcherConfig,
}

impl NGramMatcher {
    /// Creates a matcher with the given configuration.
    pub fn new(config: NGramMatcherConfig) -> Self {
        assert!(config.n_min >= 1, "n_min must be at least 1");
        assert!(config.n_min <= config.n_max, "n_min must not exceed n_max");
        Self { config }
    }

    /// Creates a matcher with the paper's default parameters (`n0 = 4`,
    /// `nmax = 20`).
    pub fn with_defaults() -> Self {
        Self::new(NGramMatcherConfig::default())
    }

    /// The matcher configuration.
    pub fn config(&self) -> &NGramMatcherConfig {
        &self.config
    }

    /// Chooses which column should be treated as the source: the paper tags
    /// the more informative column — approximated by the longer average value
    /// length — as the source. Returns `true` when the pair's columns should
    /// be swapped (i.e. the target column is the more informative one).
    pub fn should_swap(pair: &ColumnPair) -> bool {
        let avg = |col: &[String]| {
            if col.is_empty() {
                return 0.0;
            }
            col.iter().map(|v| v.chars().count()).sum::<usize>() as f64 / col.len() as f64
        };
        avg(&pair.target) > avg(&pair.source)
    }

    /// Runs Algorithm 1: finds candidate joinable row pairs between the
    /// source and target columns of `pair`, chunking source rows across the
    /// configured worker threads (see the module docs; output is
    /// bit-identical to [`crate::reference::find_candidates_reference`] at
    /// any thread count).
    pub fn find_candidates(&self, pair: &ColumnPair) -> Vec<RowMatch> {
        // Invariant is local (audited): `MatchAbort` only arises from a
        // tripped budget token or a sticky corpus failure, and both inputs
        // are `None` on this line.
        self.try_find_candidates(pair, None, None)
            .expect("matching without a budget or corpus cannot abort")
    }

    /// [`Self::find_candidates`] over a shared [`GramCorpus`]: the pair's
    /// columns are interned in (or served from) the corpus, so their
    /// normalization, [`ColumnStats`], and [`NGramIndex`] are derived once
    /// per *column* across the whole repository instead of once per call.
    ///
    /// The corpus artifacts are pure functions of the same inputs the
    /// per-call path uses, so output is bit-identical to
    /// [`Self::find_candidates`] — and therefore to the reference oracle —
    /// at any thread count (`crates/join/tests/proptest_batch.rs` enforces
    /// both equalities). The corpus must normalize exactly as this matcher's
    /// configuration does.
    pub fn find_candidates_in(&self, pair: &ColumnPair, corpus: &GramCorpus) -> Vec<RowMatch> {
        self.try_find_candidates(pair, Some(corpus), None)
            .unwrap_or_else(|abort| panic!("{abort}"))
    }

    /// The fallible core of [`Self::find_candidates`] /
    /// [`Self::find_candidates_in`]: runs the same scan — bit-identically
    /// when it completes — but aborts cleanly with a [`MatchAbort`] instead
    /// of panicking or hanging when the pair's `budget` trips or a shared
    /// `corpus` artifact has a sticky build failure. With `corpus = None`
    /// the per-call artifacts are built directly; with `budget = None`
    /// nothing is checked and `Ok` is guaranteed absent corpus failures.
    ///
    /// The budget is checked between the expensive build steps (each
    /// normalization pass, stats build, and index build) and cooperatively
    /// inside the row scan, so a tripped deadline stops the pair within one
    /// build step or row chunk.
    pub fn try_find_candidates(
        &self,
        pair: &ColumnPair,
        corpus: Option<&GramCorpus>,
        budget: Option<&BudgetToken>,
    ) -> Result<Vec<RowMatch>, MatchAbort> {
        pair.assert_row_indexable();
        let check = |budget: Option<&BudgetToken>| -> Result<(), MatchAbort> {
            match budget {
                Some(token) => token.check().map_err(MatchAbort::from),
                None => Ok(()),
            }
        };
        check(budget)?;
        let (n_min, n_max) = (self.config.n_min, self.config.n_max);
        if let Some(corpus) = corpus {
            self.corpus_candidates(pair.source.as_slice(), pair.target.as_slice(), corpus, budget)
        } else {
            // Shared read-only scan state, built once for all workers:
            // column statistics for IRF on both sides and the inverted
            // index on the target column for the containment lookup. This
            // Vec<String> path is the retained reference representation the
            // arena differential suites compare against.
            let source: Vec<String> = pair
                .source
                .iter()
                .map(|v| normalize_for_matching(v, &self.config.normalize))
                .collect();
            check(budget)?;
            let target: Vec<String> = pair
                .target
                .iter()
                .map(|v| normalize_for_matching(v, &self.config.normalize))
                .collect();
            check(budget)?;
            let source_stats = ColumnStats::build(&source, n_min, n_max);
            let target_stats = ColumnStats::build(&target, n_min, n_max);
            check(budget)?;
            let target_index = NGramIndex::build(&target, n_min, n_max);
            check(budget)?;
            self.scan_columns(source.as_slice(), &source_stats, &target_stats, &target_index, budget)
                .map_err(MatchAbort::from)
        }
    }

    /// [`Self::try_find_candidates`] over an arena-backed pair: columns are
    /// already in columnar storage, so the corpus interns them without a
    /// `Vec<String>` detour and the per-call path normalizes straight into
    /// a fresh arena. Output is bit-identical to the `Vec<String>` path on
    /// the same cell contents at any thread count (the pair even interns to
    /// the same corpus entries, since the content fingerprint is storage-
    /// agnostic).
    pub fn try_find_candidates_arena(
        &self,
        pair: &ArenaPair,
        corpus: Option<&GramCorpus>,
        budget: Option<&BudgetToken>,
    ) -> Result<Vec<RowMatch>, MatchAbort> {
        let check = |budget: Option<&BudgetToken>| -> Result<(), MatchAbort> {
            match budget {
                Some(token) => token.check().map_err(MatchAbort::from),
                None => Ok(()),
            }
        };
        check(budget)?;
        let (n_min, n_max) = (self.config.n_min, self.config.n_max);
        if let Some(corpus) = corpus {
            self.corpus_candidates(&pair.source, &pair.target, corpus, budget)
        } else {
            let arena_abort = |e: ArenaError| {
                MatchAbort::Corpus(CorpusFailure { artifact: "column", message: e.to_string() })
            };
            let source = ColumnArena::try_normalized(&pair.source, &self.config.normalize)
                .map_err(arena_abort)?;
            check(budget)?;
            let target = ColumnArena::try_normalized(&pair.target, &self.config.normalize)
                .map_err(arena_abort)?;
            check(budget)?;
            let source_stats = ColumnStats::build_on(&source, n_min, n_max);
            let target_stats = ColumnStats::build_on(&target, n_min, n_max);
            check(budget)?;
            let target_index = NGramIndex::try_build_on(&target, n_min, n_max)
                .map_err(|e| MatchAbort::Corpus(CorpusFailure { artifact: "index", message: e.to_string() }))?;
            check(budget)?;
            self.scan_columns(&source, &source_stats, &target_stats, &target_index, budget)
                .map_err(MatchAbort::from)
        }
    }

    /// Infallible [`Self::try_find_candidates_arena`] without a corpus or
    /// budget (the arena counterpart of [`Self::find_candidates`]).
    pub fn find_candidates_arena(&self, pair: &ArenaPair) -> Vec<RowMatch> {
        self.try_find_candidates_arena(pair, None, None)
            .unwrap_or_else(|abort| panic!("{abort}"))
    }

    /// The shared corpus-served scan: interns both raw columns (whatever
    /// their storage), pulls the cached stats/index artifacts, and scans
    /// the source column's normalized arena. Used by both the
    /// `Vec<String>`-backed and arena-backed entry points — interning is by
    /// cell content, so the two representations share entries.
    fn corpus_candidates<S, T>(
        &self,
        source_raw: &S,
        target_raw: &T,
        corpus: &GramCorpus,
        budget: Option<&BudgetToken>,
    ) -> Result<Vec<RowMatch>, MatchAbort>
    where
        S: CellText + ?Sized,
        T: CellText + ?Sized,
    {
        assert_eq!(
            corpus.options(),
            &self.config.normalize,
            "corpus normalization differs from the matcher configuration"
        );
        let check = |budget: Option<&BudgetToken>| -> Result<(), MatchAbort> {
            match budget {
                Some(token) => token.check().map_err(MatchAbort::from),
                None => Ok(()),
            }
        };
        let (n_min, n_max) = (self.config.n_min, self.config.n_max);
        let source = corpus.try_column_on(source_raw)?;
        check(budget)?;
        let target = corpus.try_column_on(target_raw)?;
        check(budget)?;
        let source_stats = source.try_stats(n_min, n_max)?;
        let target_stats = target.try_stats(n_min, n_max)?;
        check(budget)?;
        let target_index = target.try_index(n_min, n_max)?;
        check(budget)?;
        self.scan_columns(source.normalized(), &source_stats, &target_stats, &target_index, budget)
            .map_err(MatchAbort::from)
    }

    /// The planned parallel scan over an already-normalized source column
    /// (any [`CellText`] storage — the corpus's arena or a per-call
    /// `Vec<String>`) and prebuilt gram artifacts — the shared core of
    /// every matcher entry point. Workers borrow cell slices out of the
    /// shared column; nothing is cloned into the scan.
    fn scan_columns<C: CellText + ?Sized>(
        &self,
        source: &C,
        source_stats: &ColumnStats,
        target_stats: &ColumnStats,
        target_index: &NGramIndex,
        budget: Option<&BudgetToken>,
    ) -> Result<Vec<RowMatch>, BudgetExceeded> {
        // Contiguous row chunks across the thread budget, concatenated in
        // order — the per-row sequence is the serial scan's at any budget.
        // The budget (deadline only; caps are charged at admission) is
        // checked before every row, aborting the whole scan on a trip.
        let per_row: Vec<RowHits> =
            chunk_map_rows_budgeted(source.cell_count(), self.config.threads, budget, |row| {
                self.scan_row(source.cell(row), source_stats, target_stats, target_index)
            })?;

        // Assembly in the oracle's size-major order. Each row's hits are
        // sorted by size, so one cursor per row makes this linear in the
        // output.
        let mut cursors = vec![0usize; per_row.len()];
        let mut out: Vec<RowMatch> = Vec::new();
        for n in self.config.n_min..=self.config.n_max {
            for (row_idx, hits) in per_row.iter().enumerate() {
                let cursor = &mut cursors[row_idx];
                if *cursor < hits.len() && hits[*cursor].0 == n {
                    let source_row = row_id(row_idx);
                    for &target_row in &hits[*cursor].1 {
                        out.push(RowMatch { source_row, target_row });
                    }
                    *cursor += 1;
                }
            }
        }
        Ok(out)
    }

    /// Scans one normalized source row: selects the representative n-gram of
    /// every size in one fused pass (char boundaries computed once, each
    /// size slides a window over them) and expands the representatives
    /// against the target index, deduplicating target rows across sizes.
    fn scan_row(
        &self,
        row: &str,
        source_stats: &ColumnStats,
        target_stats: &ColumnStats,
        target_index: &NGramIndex,
    ) -> RowHits {
        let boundaries: Vec<usize> = row
            .char_indices()
            .map(|(b, _)| b)
            .chain(std::iter::once(row.len()))
            .collect();
        let chars = boundaries.len() - 1;
        let mut hits: RowHits = Vec::new();
        if chars < self.config.n_min {
            // Row shorter than the smallest size: no n-gram of any
            // requested size exists (the oracle's empty-grams `continue`).
            return hits;
        }
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        for n in self.config.n_min..=self.config.n_max.min(chars) {
            // argmax Rscore over the row's n-grams of this size; ties keep
            // the first gram, exactly as the oracle's `s >= score` guard.
            let mut best: Option<(&str, f64)> = None;
            for i in 0..=chars - n {
                let g = &row[boundaries[i]..boundaries[i + n]];
                let score = source_stats.irf(g) * target_stats.irf(g);
                if score <= 0.0 {
                    continue;
                }
                match best {
                    Some((_, s)) if s >= score => {}
                    _ => best = Some((g, score)),
                }
            }
            let Some((rep, _)) = best else { continue };
            let matches = target_index.rows_containing(rep);
            if let Some(cap) = self.config.max_matches_per_representative {
                if matches.len() > cap {
                    continue;
                }
            }
            let new: Vec<u32> = matches.iter().copied().filter(|&t| seen.insert(t)).collect();
            if !new.is_empty() {
                hits.push((n, new));
            }
        }
        hits
    }

    /// Materializes candidate pairs as (source value, target value) strings —
    /// the input format of the synthesis engine. Values are the *original*
    /// (un-normalized) cell contents; the engine applies its own
    /// normalization.
    pub fn candidate_value_pairs(&self, pair: &ColumnPair) -> Vec<(String, String)> {
        Self::materialize_pairs(pair, self.find_candidates(pair))
    }

    /// [`Self::candidate_value_pairs`] over a shared [`GramCorpus`] (see
    /// [`Self::find_candidates_in`]).
    pub fn candidate_value_pairs_in(
        &self,
        pair: &ColumnPair,
        corpus: &GramCorpus,
    ) -> Vec<(String, String)> {
        Self::materialize_pairs(pair, self.find_candidates_in(pair, corpus))
    }

    /// Fallible [`Self::candidate_value_pairs`] /
    /// [`Self::candidate_value_pairs_in`] over an optional corpus and
    /// budget (see [`Self::try_find_candidates`]).
    pub fn try_candidate_value_pairs(
        &self,
        pair: &ColumnPair,
        corpus: Option<&GramCorpus>,
        budget: Option<&BudgetToken>,
    ) -> Result<Vec<(String, String)>, MatchAbort> {
        Ok(Self::materialize_pairs(pair, self.try_find_candidates(pair, corpus, budget)?))
    }

    fn materialize_pairs(pair: &ColumnPair, matches: Vec<RowMatch>) -> Vec<(String, String)> {
        // Invariant is local (audited): `as usize` here widens `u32` row
        // ids (lossless on every supported target), and the ids came from
        // scanning these very columns, whose lengths already passed
        // `checked_row_count` at index construction.
        matches
            .into_iter()
            .map(|m| {
                (
                    pair.source[m.source_row as usize].clone(),
                    pair.target[m.target_row as usize].clone(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::find_candidates_reference;

    fn staff_pair() -> ColumnPair {
        ColumnPair::aligned(
            "staff",
            vec![
                "Rafiei, Davood".into(),
                "Nascimento, Mario A".into(),
                "Gingrich, Douglas M".into(),
                "Prus-Czarnecki, Andrzej".into(),
                "Bowling, Michael".into(),
                "Gosgnach, Simon".into(),
            ],
            vec![
                "D Rafiei".into(),
                "M A Nascimento".into(),
                "D Gingrich".into(),
                "A Prus-czarnecki".into(),
                "M Bowling".into(),
                "S Gosgnach".into(),
            ],
        )
    }

    #[test]
    fn finds_the_true_pairs_on_the_paper_example() {
        let matcher = NGramMatcher::with_defaults();
        let found = matcher.find_candidates(&staff_pair());
        // Every golden pair must be among the candidates (high recall).
        for i in 0..6u32 {
            assert!(
                found
                    .iter()
                    .any(|m| m.source_row == i && m.target_row == i),
                "golden pair {i} missing from {found:?}"
            );
        }
    }

    #[test]
    fn representative_ngram_limits_false_matches() {
        // A shared suffix ("@ualberta.ca") must not match every row to every
        // other row: distinctive user names dominate the Rscore.
        let pair = ColumnPair::aligned(
            "emails",
            vec![
                "Rafiei, Davood".into(),
                "Bowling, Michael".into(),
                "Gosgnach, Simon".into(),
            ],
            vec![
                "davood.rafiei@ualberta.ca".into(),
                "michael.bowling@ualberta.ca".into(),
                "simon.gosgnach@ualberta.ca".into(),
            ],
        );
        let matcher = NGramMatcher::with_defaults();
        let found = matcher.find_candidates(&pair);
        let false_matches = found
            .iter()
            .filter(|m| m.source_row != m.target_row)
            .count();
        assert_eq!(false_matches, 0, "false matches: {found:?}");
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn no_candidates_for_disjoint_columns() {
        let pair = ColumnPair::aligned(
            "disjoint",
            vec!["aaaaaa".into(), "bbbbbb".into()],
            vec!["cccccc".into(), "dddddd".into()],
        );
        let matcher = NGramMatcher::with_defaults();
        assert!(matcher.find_candidates(&pair).is_empty());
    }

    #[test]
    fn value_pairs_use_original_strings() {
        let matcher = NGramMatcher::with_defaults();
        let values = matcher.candidate_value_pairs(&staff_pair());
        assert!(values
            .iter()
            .any(|(s, t)| s == "Rafiei, Davood" && t == "D Rafiei"));
    }

    #[test]
    fn should_swap_picks_longer_column_as_source() {
        let pair = ColumnPair::aligned(
            "x",
            vec!["ab".into(), "cd".into()],
            vec!["a much longer descriptive value".into(), "another long one".into()],
        );
        assert!(NGramMatcher::should_swap(&pair));
        assert!(!NGramMatcher::should_swap(&staff_pair()));
    }

    #[test]
    fn representative_cap_skips_promiscuous_grams() {
        // All targets share the gram "aaaa"; with a cap of 1 the matcher
        // refuses to expand it.
        let pair = ColumnPair::aligned(
            "caps",
            vec!["aaaa x".into(), "aaaa y".into()],
            vec!["aaaa 1".into(), "aaaa 2".into()],
        );
        let capped = NGramMatcher::new(NGramMatcherConfig {
            max_matches_per_representative: Some(1),
            ..NGramMatcherConfig::default()
        });
        assert!(capped.find_candidates(&pair).is_empty());
        let uncapped = NGramMatcher::with_defaults();
        assert_eq!(uncapped.find_candidates(&pair).len(), 4);
    }

    #[test]
    fn duplicate_pairs_not_reported_twice() {
        let matcher = NGramMatcher::with_defaults();
        let found = matcher.find_candidates(&staff_pair());
        let set: std::collections::HashSet<(u32, u32)> = found
            .iter()
            .map(|m| (m.source_row, m.target_row))
            .collect();
        assert_eq!(set.len(), found.len());
    }

    #[test]
    #[should_panic(expected = "n_min")]
    fn invalid_config_rejected() {
        let _ = NGramMatcher::new(NGramMatcherConfig {
            n_min: 0,
            ..NGramMatcherConfig::default()
        });
    }

    #[test]
    fn parallel_scan_bit_identical_to_reference() {
        // Enough rows that 2 and 4 workers chunk differently; duplicated
        // and empty values exercise the dedup and short-row paths.
        let mut source: Vec<String> = Vec::new();
        let mut target: Vec<String> = Vec::new();
        for i in 0..37 {
            source.push(format!("lastname{i:02}, firstname{i:02}"));
            target.push(format!("f{i:02} lastname{i:02}"));
        }
        source.push(String::new());
        target.push("orphan value".into());
        source.push("ab".into()); // shorter than n_min = 4
        target.push("f00 lastname00".into()); // duplicate target value
        let pair = ColumnPair::aligned("par", source, target);

        let config = NGramMatcherConfig::default();
        let oracle = find_candidates_reference(&config, &pair);
        for threads in [1usize, 2, 3, 4, 16] {
            let matcher = NGramMatcher::new(config.clone().with_threads(threads));
            assert_eq!(
                matcher.find_candidates(&pair),
                oracle,
                "diverged at {threads} threads"
            );
        }
        assert!(!oracle.is_empty());
    }

    #[test]
    fn empty_source_column_yields_nothing() {
        let pair = ColumnPair {
            name: "empty-source".into(),
            source: vec![],
            target: vec!["abcd".into(), "efgh".into()],
            golden: vec![],
        };
        for threads in [1usize, 4] {
            let matcher =
                NGramMatcher::new(NGramMatcherConfig::default().with_threads(threads));
            assert!(matcher.find_candidates(&pair).is_empty());
        }
    }

    #[test]
    fn empty_target_column_yields_nothing() {
        let pair = ColumnPair {
            name: "empty-target".into(),
            source: vec!["abcd".into(), "efgh".into()],
            target: vec![],
            golden: vec![],
        };
        for threads in [1usize, 4] {
            let matcher =
                NGramMatcher::new(NGramMatcherConfig::default().with_threads(threads));
            assert!(matcher.find_candidates(&pair).is_empty());
        }
    }

    #[test]
    fn rows_shorter_than_n_min_are_skipped_not_crashed() {
        let pair = ColumnPair::aligned(
            "short",
            vec!["ab".into(), "c".into(), String::new(), "abcdefgh".into()],
            vec!["ab".into(), "c".into(), "x".into(), "abcdefgh".into()],
        );
        let config = NGramMatcherConfig::default(); // n_min = 4
        let oracle = find_candidates_reference(&config, &pair);
        let found = NGramMatcher::new(config.clone().with_threads(4)).find_candidates(&pair);
        assert_eq!(found, oracle);
        // Only the one long row can produce a representative.
        assert!(found.iter().all(|m| m.source_row == 3));
        assert!(!found.is_empty());
    }

    #[test]
    fn all_representatives_capped_yields_nothing_for_that_row() {
        // Row 0's every n-gram expands to both targets (they share all its
        // grams), so under a cap of 1 every size is non-discriminative and
        // the row contributes nothing — while row 1 still matches uniquely.
        let pair = ColumnPair {
            name: "capped-row".into(),
            source: vec!["aaaa".into(), "unique-row zzz".into()],
            target: vec!["aaaa 1".into(), "aaaa 2 unique-row".into()],
            golden: vec![(0, 0), (1, 1)],
        };
        let config = NGramMatcherConfig {
            max_matches_per_representative: Some(1),
            ..NGramMatcherConfig::default()
        };
        let oracle = find_candidates_reference(&config, &pair);
        for threads in [1usize, 2, 4] {
            let found = NGramMatcher::new(config.clone().with_threads(threads))
                .find_candidates(&pair);
            assert_eq!(found, oracle);
            assert!(found.iter().all(|m| m.source_row == 1), "{found:?}");
            assert!(!found.is_empty());
        }
    }

    #[test]
    fn corpus_scan_bit_identical_to_per_call_path() {
        // The same pairs through a shared corpus and through the per-call
        // path must match the reference exactly, at several thread counts.
        let pair = staff_pair();
        let config = NGramMatcherConfig::default();
        let oracle = find_candidates_reference(&config, &pair);
        let corpus = GramCorpus::new(config.normalize);
        for threads in [1usize, 2, 4] {
            let matcher = NGramMatcher::new(config.clone().with_threads(threads));
            assert_eq!(matcher.find_candidates_in(&pair, &corpus), oracle);
            assert_eq!(matcher.find_candidates(&pair), oracle);
        }
        // Both columns interned once, served from cache afterwards.
        let stats = corpus.stats();
        assert_eq!(stats.columns_interned, 2);
        assert_eq!(stats.column_hits, 4);
        assert_eq!(stats.stats_built, 2);
        assert_eq!(stats.indexes_built, 1);
    }

    #[test]
    fn column_shared_by_many_pairs_interned_once() {
        // One master source column probed against three target columns: the
        // shared column must be normalized/interned exactly once, and every
        // pair's output must equal its per-call run.
        let shared_source: Vec<String> = vec![
            "Rafiei, Davood".into(),
            "Bowling, Michael".into(),
            "Gosgnach, Simon".into(),
        ];
        let targets: Vec<Vec<String>> = vec![
            vec!["D Rafiei".into(), "M Bowling".into(), "S Gosgnach".into()],
            vec!["d.rafiei".into(), "m.bowling".into(), "s.gosgnach".into()],
            vec!["RAFIEI D".into(), "BOWLING M".into(), "GOSGNACH S".into()],
        ];
        let config = NGramMatcherConfig::default();
        let matcher = NGramMatcher::new(config.clone());
        let corpus = GramCorpus::new(config.normalize);
        for (i, target) in targets.iter().enumerate() {
            let pair = ColumnPair::aligned(format!("shared-{i}"), shared_source.clone(), target.clone());
            assert_eq!(
                matcher.find_candidates_in(&pair, &corpus),
                matcher.find_candidates(&pair),
                "pair {i} diverged through the corpus"
            );
        }
        let stats = corpus.stats();
        // 1 shared source + 3 distinct targets; the source was served from
        // cache on the 2nd and 3rd pair (2 normalizations saved), and its
        // ColumnStats was built once and hit twice.
        assert_eq!(stats.columns_interned, 4);
        assert_eq!(stats.column_hits, 2);
        assert_eq!(stats.normalizations_saved(), 2);
        assert_eq!(stats.stats_built, 4);
        assert_eq!(stats.stats_hits, 2);
        assert_eq!(stats.indexes_built, 3);
        assert_eq!(stats.index_hits, 0);
    }

    #[test]
    fn arena_pair_bit_identical_to_vec_pair() {
        // The arena-backed entry points (per-call and corpus-served) must
        // reproduce the Vec<String> path exactly — same pairs, same order —
        // at every thread count.
        let pair = staff_pair();
        let arena = pair.to_arena().unwrap();
        let config = NGramMatcherConfig::default();
        let oracle = find_candidates_reference(&config, &pair);
        let corpus = GramCorpus::new(config.normalize);
        for threads in [1usize, 2, 4] {
            let matcher = NGramMatcher::new(config.clone().with_threads(threads));
            assert_eq!(
                matcher.find_candidates_arena(&arena),
                oracle,
                "per-call arena path diverged at {threads} threads"
            );
            assert_eq!(
                matcher.try_find_candidates_arena(&arena, Some(&corpus), None).unwrap(),
                oracle,
                "corpus arena path diverged at {threads} threads"
            );
        }
        // Arena and Vec columns share corpus entries (content interning).
        let matcher = NGramMatcher::new(config.clone());
        assert_eq!(matcher.find_candidates_in(&pair, &corpus), oracle);
        assert_eq!(corpus.stats().columns_interned, 2);
    }

    #[test]
    fn stats_built_once_per_interned_column_across_repeated_scans() {
        // Satellite regression (PR 4 caveat): repeated batch scans through
        // a corpus must NOT rebuild stats strings per call. The corpus
        // counters prove each interned column derives its ColumnStats
        // exactly once, with every later scan served from cache.
        let pair = staff_pair();
        let config = NGramMatcherConfig::default();
        let matcher = NGramMatcher::new(config.clone());
        let corpus = GramCorpus::new(config.normalize);
        let first = matcher.find_candidates_in(&pair, &corpus);
        for round in 0..5 {
            assert_eq!(matcher.find_candidates_in(&pair, &corpus), first, "round {round}");
        }
        let stats = corpus.stats();
        // 2 distinct columns → exactly 2 stats builds and 1 target index
        // build, no matter how many scans ran.
        assert_eq!(stats.columns_interned, 2);
        assert_eq!(stats.stats_built, 2);
        assert_eq!(stats.indexes_built, 1);
        // 6 scans × (2 stats + 1 index) requests = 12 stats lookups and 6
        // index lookups; all but the first builds were cache hits.
        assert_eq!(stats.stats_hits, 10);
        assert_eq!(stats.index_hits, 5);
        assert_eq!(stats.column_hits, 10);
    }

    #[test]
    #[should_panic(expected = "corpus normalization differs")]
    fn corpus_with_mismatched_normalization_rejected() {
        let corpus = GramCorpus::new(NormalizeOptions::none());
        let matcher = NGramMatcher::with_defaults(); // default normalize
        let _ = matcher.find_candidates_in(&staff_pair(), &corpus);
    }

    #[test]
    fn all_duplicate_target_values_fan_out() {
        // Every target row holds the same value: a matching source row must
        // pair with all of them, in posting-list (row-id) order.
        let pair = ColumnPair {
            name: "dup-targets".into(),
            source: vec!["alpha beta".into()],
            target: vec!["alpha".into(), "alpha".into(), "alpha".into()],
            golden: vec![(0, 0), (0, 1), (0, 2)],
        };
        let config = NGramMatcherConfig::default();
        let oracle = find_candidates_reference(&config, &pair);
        let found = NGramMatcher::new(config.clone().with_threads(4)).find_candidates(&pair);
        assert_eq!(found, oracle);
        let targets: Vec<u32> = found.iter().map(|m| m.target_row).collect();
        assert_eq!(targets, vec![0, 1, 2]);
    }

    #[test]
    fn live_budget_is_bit_identical_to_unbudgeted() {
        let pair = staff_pair();
        let budget = tjoin_text::RunBudget::unlimited().token();
        for threads in [1usize, 2, 4] {
            let matcher = NGramMatcher::new(NGramMatcherConfig::default().with_threads(threads));
            assert_eq!(
                matcher.try_find_candidates(&pair, None, Some(&budget)).unwrap(),
                matcher.find_candidates(&pair),
                "diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn tripped_budget_aborts_cleanly() {
        let pair = staff_pair();
        let budget = tjoin_text::RunBudget::unlimited()
            .with_deadline(std::time::Duration::ZERO)
            .token();
        let matcher = NGramMatcher::new(NGramMatcherConfig::default().with_threads(2));
        assert_eq!(
            matcher.try_find_candidates(&pair, None, Some(&budget)),
            Err(MatchAbort::Budget(tjoin_text::BudgetExceeded::Deadline))
        );
        // The corpus path aborts identically, before interning anything.
        let corpus = GramCorpus::new(NormalizeOptions::default());
        assert_eq!(
            matcher.try_find_candidates(&pair, Some(&corpus), Some(&budget)),
            Err(MatchAbort::Budget(tjoin_text::BudgetExceeded::Deadline))
        );
        assert_eq!(corpus.column_count(), 0);
    }
}
