//! The retained serial row-matching oracle.
//!
//! This is the pre-parallel `NGramMatcher::find_candidates` loop, kept
//! verbatim as the differential oracle for the planned parallel scan in
//! [`crate::ngram`]: size-major iteration (n-gram sizes outer, source rows
//! inner), per-size re-extraction of the row's n-grams, and a global
//! seen-set dedup in discovery order. The parallel matcher must produce
//! bit-identical, identically ordered [`RowMatch`] output at any thread
//! count; `crates/join/tests/proptest_join.rs` holds it to that.
//!
//! The oracle deliberately re-derives every per-call artifact — it never
//! reads a shared `GramCorpus` — so it also anchors the corpus-reuse
//! differentials: `NGramMatcher::find_candidates_in` over interned columns
//! must reproduce this function's output exactly
//! (`crates/join/tests/proptest_batch.rs`).

use crate::ngram::{NGramMatcherConfig, RowMatch};
use tjoin_datasets::{row_id, ColumnPair};
use tjoin_text::{char_ngrams, normalize_for_matching, ColumnStats, FxHashSet, NGramIndex};

/// Runs Algorithm 1 with the naive size-major loop (the retained oracle).
///
/// The `threads` field of the configuration is ignored: the oracle is
/// always serial.
pub fn find_candidates_reference(config: &NGramMatcherConfig, pair: &ColumnPair) -> Vec<RowMatch> {
    pair.assert_row_indexable();
    let source: Vec<String> = pair
        .source
        .iter()
        .map(|v| normalize_for_matching(v, &config.normalize))
        .collect();
    let target: Vec<String> = pair
        .target
        .iter()
        .map(|v| normalize_for_matching(v, &config.normalize))
        .collect();

    // Column statistics for IRF on both sides and the inverted index on
    // the target column for the containment lookup.
    let source_stats = ColumnStats::build(&source, config.n_min, config.n_max);
    let target_stats = ColumnStats::build(&target, config.n_min, config.n_max);
    let target_index = NGramIndex::build(&target, config.n_min, config.n_max);

    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut out: Vec<RowMatch> = Vec::new();

    for n in config.n_min..=config.n_max {
        for (row_idx, row) in source.iter().enumerate() {
            let grams = char_ngrams(row, n);
            if grams.is_empty() {
                continue;
            }
            // argmax Rscore over the row's n-grams of this size.
            let mut best: Option<(&str, f64)> = None;
            for g in grams {
                let score = source_stats.irf(g) * target_stats.irf(g);
                if score <= 0.0 {
                    continue;
                }
                match best {
                    Some((_, s)) if s >= score => {}
                    _ => best = Some((g, score)),
                }
            }
            let Some((rep, _)) = best else { continue };
            let matches = target_index.rows_containing(rep);
            if let Some(cap) = config.max_matches_per_representative {
                if matches.len() > cap {
                    continue;
                }
            }
            for &t in matches {
                if seen.insert((row_id(row_idx), t)) {
                    out.push(RowMatch {
                        source_row: row_id(row_idx),
                        target_row: t,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ngram::NGramMatcher;

    #[test]
    fn oracle_matches_production_matcher_on_the_paper_example() {
        let pair = ColumnPair::aligned(
            "staff",
            vec!["Rafiei, Davood".into(), "Bowling, Michael".into()],
            vec!["D Rafiei".into(), "M Bowling".into()],
        );
        let config = NGramMatcherConfig::default();
        let reference = find_candidates_reference(&config, &pair);
        let production = NGramMatcher::new(config).find_candidates(&pair);
        assert_eq!(reference, production);
        assert!(!reference.is_empty());
    }

    #[test]
    fn oracle_ignores_thread_count() {
        let pair = ColumnPair::aligned(
            "t",
            vec!["abcd efgh".into(), "ijkl mnop".into()],
            vec!["abcd".into(), "ijkl".into()],
        );
        let serial = find_candidates_reference(&NGramMatcherConfig::default(), &pair);
        let threaded = find_candidates_reference(
            &NGramMatcherConfig {
                threads: 4,
                ..NGramMatcherConfig::default()
            },
            &pair,
        );
        assert_eq!(serial, threaded);
    }
}
