//! # tjoin-matching
//!
//! Row matching: detecting candidate joinable row pairs between a source and
//! a target column (Section 4.2.1 of the paper), built for repository-scale
//! workloads where *many* column pairs are matched under one thread budget.
//!
//! Transformation synthesis assumes a set of (source, target) pairs that
//! describe the same entity under different formatting. When such pairs are
//! not tagged in advance, the paper finds them with a representative-n-gram
//! matcher: for every source row and every n-gram size in `[n0, nmax]`, the
//! n-gram with the highest Rscore (rarest in both columns, equations 1–2) is
//! selected, and every target row containing a representative n-gram becomes
//! a candidate pair (Algorithm 1).
//!
//! # Planned parallel matching
//!
//! [`ngram::NGramMatcher::find_candidates`] runs Algorithm 1 as a planned
//! two-phase scan, following the house pattern of the synthesis core's
//! parallel coverage engine:
//!
//! 1. the shared read-only state — normalized columns, the two
//!    [`tjoin_text::ColumnStats`] IRF sides, and the target
//!    [`tjoin_text::NGramIndex`] — is built exactly once, independent of
//!    thread count; at repository scale,
//!    [`ngram::NGramMatcher::find_candidates_in`] serves that state from a
//!    shared [`tjoin_text::GramCorpus`], so a column referenced by several
//!    pairs is normalized and indexed once for the whole repository;
//! 2. source rows are chunked across [`ngram::NGramMatcherConfig::threads`]
//!    workers (the `SynthesisConfig::threads` convention), each scanning its
//!    rows with per-size representative selection fused into one pass per
//!    row (char boundaries computed once; no per-size re-extraction).
//!
//! Because candidate dedup keys include the source row, per-row scans are
//! independent and a deterministic size-major assembly reproduces the
//! serial discovery order exactly: output is **bit-identical at any thread
//! count** to the retained oracle
//! [`reference::find_candidates_reference`], which the differential suite
//! in `crates/join/tests/proptest_join.rs` enforces.
//!
//! * [`ngram`] — the planned-parallel n-gram matcher and its configuration.
//! * [`reference`] — the retained serial size-major oracle loop.
//! * [`golden`] — the oracle matcher backed by a ground-truth mapping (the
//!   paper's "golden row matching" rows in Tables 2 and 4).
//! * [`metrics`] — precision / recall / F1 of a candidate pair set against
//!   the golden mapping (Table 1).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod golden;
pub mod metrics;
pub mod ngram;
pub mod reference;

pub use golden::{golden_pairs, golden_value_pairs};
pub use metrics::{evaluate_pairs, MatchingMetrics};
pub use ngram::{MatchAbort, NGramMatcher, NGramMatcherConfig, RowMatch};
pub use reference::find_candidates_reference;

/// Which row-matching mode produced a pair set; experiment tables report
/// results under both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchingMode {
    /// Candidate pairs from the n-gram matcher (Algorithm 1).
    NGram,
    /// Ground-truth pairs (the golden mapping).
    Golden,
}

impl MatchingMode {
    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            MatchingMode::NGram => "N-Gram",
            MatchingMode::Golden => "Golden",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels() {
        assert_eq!(MatchingMode::NGram.label(), "N-Gram");
        assert_eq!(MatchingMode::Golden.label(), "Golden");
    }
}
