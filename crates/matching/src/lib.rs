//! # tjoin-matching
//!
//! Row matching: detecting candidate joinable row pairs between a source and
//! a target column (Section 4.2.1 of the paper).
//!
//! Transformation synthesis assumes a set of (source, target) pairs that
//! describe the same entity under different formatting. When such pairs are
//! not tagged in advance, the paper finds them with a representative-n-gram
//! matcher: for every source row and every n-gram size in `[n0, nmax]`, the
//! n-gram with the highest Rscore (rarest in both columns, equations 1–2) is
//! selected, and every target row containing a representative n-gram becomes
//! a candidate pair (Algorithm 1).
//!
//! * [`ngram`] — the n-gram matcher and its configuration.
//! * [`golden`] — the oracle matcher backed by a ground-truth mapping (the
//!   paper's "golden row matching" rows in Tables 2 and 4).
//! * [`metrics`] — precision / recall / F1 of a candidate pair set against
//!   the golden mapping (Table 1).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod golden;
pub mod metrics;
pub mod ngram;

pub use golden::golden_pairs;
pub use metrics::{evaluate_pairs, MatchingMetrics};
pub use ngram::{NGramMatcher, NGramMatcherConfig, RowMatch};

/// Which row-matching mode produced a pair set; experiment tables report
/// results under both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchingMode {
    /// Candidate pairs from the n-gram matcher (Algorithm 1).
    NGram,
    /// Ground-truth pairs (the golden mapping).
    Golden,
}

impl MatchingMode {
    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            MatchingMode::NGram => "N-Gram",
            MatchingMode::Golden => "Golden",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels() {
        assert_eq!(MatchingMode::NGram.label(), "N-Gram");
        assert_eq!(MatchingMode::Golden.label(), "Golden");
    }
}
