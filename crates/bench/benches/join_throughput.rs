//! Repository-scale matching + join benchmark, tracking four claims in
//! `BENCH_join.json` at the workspace root:
//!
//! * **Serial vs parallel matcher**: the planned parallel scan (shared
//!   stats/index built once, fused per-size representative selection, row
//!   chunks across 4 workers) against the retained size-major oracle
//!   (`tjoin_matching::reference`) and against its own single-threaded run.
//!   On this one-core CI box the thread win is scheduling-bound; the fused
//!   selection win over the oracle is the hard claim.
//! * **Reference vs fingerprint equi-join**: the owned-string-keyed oracle
//!   (`tjoin_join::reference`) against the fingerprint join (normalize
//!   once, u64 buckets, exact confirm) at 1 and 4 threads.
//! * **Batch runner throughput**: the heterogeneous generated repository
//!   driven by the work-stealing `BatchJoinRunner` at thread budgets 1 and
//!   4, with identical outcomes asserted.
//! * **Skewed repository — work stealing vs static split**: one ~8x
//!   dominant pair among small peers, the shape where the static chunk
//!   split strands workers. Outcomes asserted identical both ways; the
//!   JSON records the steal count and the shared-corpus counters
//!   (normalizations saved, asserted thread-count-invariant) — on this
//!   one-core box the wall-clock gap is scheduling noise, so the counters
//!   are the tracked claim.
//! * **Arena vs `Vec<String>` representation**: the per-call matcher over a
//!   columnar `ArenaPair` (workers slicing one shared byte buffer) against
//!   the retained `Vec<String>` per-call path, serial and at 4 threads, and
//!   the arena-backed equi-join against the owned-string oracle. Outputs
//!   asserted bit-identical; the ratios are tracked, pathology-only gated.
//! * **Isolation overhead**: the unguarded per-pair pipeline against
//!   `run_guarded` (per-phase `catch_unwind` containment) and against
//!   `run_guarded` with a live unlimited budget token (admission charging +
//!   cooperative checks). Outcomes asserted bit-identical; the ratios are
//!   tracked, pathology-only gated — containment must stay effectively
//!   free on the fault-free path.
//!
//! Outputs are asserted bit-identical across every leg before timing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tjoin_bench::time_seconds;
use tjoin_datasets::{ColumnPair, RepositoryConfig};
use tjoin_join::reference::equi_join_reference;
use tjoin_join::{BatchJoinRunner, JoinPipeline, JoinPipelineConfig};
use tjoin_matching::reference::find_candidates_reference;
use tjoin_matching::{NGramMatcher, NGramMatcherConfig};
use tjoin_text::RunBudget;
use tjoin_units::{Transformation, Unit};

const THREADS: usize = 4;

/// The matcher workload: name-style rows with shared surface structure
/// (every row contains ", " and the "last"/"first" stems) so representative
/// selection has real competition at every size.
fn matcher_pair(rows: usize) -> ColumnPair {
    let source: Vec<String> = (0..rows)
        .map(|i| format!("lastname{i:05}, firstname{i:05} dept{:02}", i % 23))
        .collect();
    let target: Vec<String> = (0..rows)
        .map(|i| format!("f{i:05} lastname{i:05}"))
        .collect();
    ColumnPair::aligned("bench-matcher", source, target)
}

/// The equi-join workload: a large 1:1 pair plus a block of duplicated
/// target values for many-to-many fan-out. Values are realistically long
/// (~30 characters) so the per-probe string hashing the fingerprint join
/// removes is a real cost in the reference.
fn join_pair(rows: usize) -> ColumnPair {
    let source: Vec<String> = (0..rows)
        .map(|i| format!("lastname-of-the-house-{i:05}, firstname{i:05}"))
        .collect();
    let mut target: Vec<String> = (0..rows)
        .map(|i| format!("f lastname-of-the-house-{i:05}"))
        .collect();
    for i in 0..rows / 100 {
        // 1% of targets duplicate their neighbor's value.
        target[i * 100 + 1] = target[i * 100].clone();
    }
    ColumnPair::aligned("bench-join", source, target)
}

fn join_transformations() -> Vec<Transformation> {
    vec![
        // The covering rule.
        Transformation::new(vec![
            Unit::split_substr(' ', 1, 0, 1),
            Unit::literal(" "),
            Unit::split(',', 0),
        ]),
        // Rules that apply but rarely or never match a target.
        Transformation::single(Unit::split(',', 0)),
        Transformation::single(Unit::substr(0, 8)),
        Transformation::new(vec![Unit::split(',', 0), Unit::literal("-x")]),
    ]
}

fn bench_matcher(c: &mut Criterion) {
    let pair = matcher_pair(400);
    let serial = NGramMatcher::new(NGramMatcherConfig::default());
    let parallel = NGramMatcher::new(NGramMatcherConfig::default().with_threads(THREADS));
    let mut group = c.benchmark_group("matcher_throughput");
    group.sample_size(10);
    group.bench_function("serial_400", |b| {
        b.iter(|| black_box(serial.find_candidates(black_box(&pair))))
    });
    group.bench_function("parallel_4t_400", |b| {
        b.iter(|| black_box(parallel.find_candidates(black_box(&pair))))
    });
    group.finish();
}

fn join_throughput_comparison(_c: &mut Criterion) {
    // --- Leg 1: matcher — reference vs fused serial vs parallel. ---
    let matcher_rows = 1_000;
    let m_pair = matcher_pair(matcher_rows);
    let m_config = NGramMatcherConfig::default();
    let reference_matches = find_candidates_reference(&m_config, &m_pair);
    let serial_matcher = NGramMatcher::new(m_config.clone());
    let parallel_matcher = NGramMatcher::new(m_config.clone().with_threads(THREADS));
    assert_eq!(serial_matcher.find_candidates(&m_pair), reference_matches);
    assert_eq!(parallel_matcher.find_candidates(&m_pair), reference_matches);
    assert!(!reference_matches.is_empty());

    let samples = 7;
    let m_reference_secs =
        time_seconds(samples, || {
            black_box(find_candidates_reference(&m_config, black_box(&m_pair)));
        });
    let m_serial_secs = time_seconds(samples, || {
        black_box(serial_matcher.find_candidates(black_box(&m_pair)));
    });
    let m_parallel_secs = time_seconds(samples, || {
        black_box(parallel_matcher.find_candidates(black_box(&m_pair)));
    });

    // --- Leg 2: equi-join — reference vs fingerprint at 1 and 4 threads. ---
    let join_rows = 20_000;
    let j_pair = join_pair(join_rows);
    let transformations = join_transformations();
    let refs: Vec<&Transformation> = transformations.iter().collect();
    let config_1t = JoinPipelineConfig::paper_default();
    let config_4t = JoinPipelineConfig::paper_default().with_threads(THREADS);
    let pipeline_1t = JoinPipeline::new(config_1t.clone());
    let pipeline_4t = JoinPipeline::new(config_4t);
    let reference_pairs =
        equi_join_reference(&j_pair, refs.iter().copied(), &config_1t.synthesis.normalize);
    assert_eq!(pipeline_1t.equi_join(&j_pair, refs.iter().copied()), reference_pairs);
    assert_eq!(pipeline_4t.equi_join(&j_pair, refs.iter().copied()), reference_pairs);
    // The duplicated-target fan-out block must be present in the output:
    // source row 0 pairs with target rows 0 and 1.
    assert!(reference_pairs.len() >= join_rows);
    assert!(reference_pairs.contains(&(0, 0)) && reference_pairs.contains(&(0, 1)));

    let j_reference_secs = time_seconds(samples, || {
        black_box(equi_join_reference(
            black_box(&j_pair),
            refs.iter().copied(),
            &config_1t.synthesis.normalize,
        ));
    });
    let j_fingerprint_secs = time_seconds(samples, || {
        black_box(pipeline_1t.equi_join(black_box(&j_pair), refs.iter().copied()));
    });
    let j_fingerprint_4t_secs = time_seconds(samples, || {
        black_box(pipeline_4t.equi_join(black_box(&j_pair), refs.iter().copied()));
    });

    // --- Leg 3: batch runner over the generated repository. ---
    let repository = RepositoryConfig::new(12, 80).generate(7);
    let batch_1 = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 1);
    let batch_4 = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), THREADS);
    let outcome_1 = batch_1.run(&repository);
    let outcome_4 = batch_4.run(&repository);
    let outcome_static = batch_4.run_static(&repository);
    for ((a, b), s) in outcome_1
        .reports
        .iter()
        .zip(&outcome_4.reports)
        .zip(&outcome_static.reports)
    {
        assert_eq!(a.outcome.predicted_pairs, b.outcome.predicted_pairs, "{}", a.name);
        assert_eq!(a.outcome.predicted_pairs, s.outcome.predicted_pairs, "{}", a.name);
        assert_eq!(a.outcome.metrics, s.outcome.metrics, "{}", a.name);
    }
    assert!(outcome_1.metrics.joined_pairs >= 6, "{:?}", outcome_1.metrics);

    let batch_samples = 5;
    let b_serial_secs = time_seconds(batch_samples, || {
        black_box(batch_1.run(black_box(&repository)));
    });
    let b_parallel_secs = time_seconds(batch_samples, || {
        black_box(batch_4.run(black_box(&repository)));
    });

    // --- Leg 4: skewed repository — work stealing vs the static split. ---
    // One ~8x dominant pair among small peers: the static split parks it on
    // one worker's chunk, the queue lets every other worker drain the rest.
    let mut skewed = RepositoryConfig::new(6, 50).with_skew(8.0).generate(13);
    assert!(skewed[0].source.len() >= 6 * skewed[1].source.len());
    // Re-probe one query column against two other pairs' targets (the
    // QJoin repository-discovery shape: no golden mapping, likely
    // unjoinable): the shared corpus serves the repeated column from
    // cache, which the JSON's normalizations_saved counter tracks.
    for i in [2usize, 3] {
        let source = skewed[1].source.clone();
        let target: Vec<String> = (0..source.len())
            .map(|r| skewed[i].target[r % skewed[i].target.len()].clone())
            .collect();
        skewed.push(ColumnPair::new(format!("reprobe-{i}"), source, target, Vec::new()));
    }
    let skew_runner = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), THREADS);
    let skew_stealing = skew_runner.run(&skewed);
    let skew_static = skew_runner.run_static(&skewed);
    for (a, b) in skew_stealing.reports.iter().zip(&skew_static.reports) {
        assert_eq!(a.outcome.predicted_pairs, b.outcome.predicted_pairs, "{}", a.name);
        assert_eq!(a.outcome.metrics, b.outcome.metrics, "{}", a.name);
    }
    assert_eq!(skew_stealing.metrics.micro, skew_static.metrics.micro);
    // The corpus counters are content-driven: identical at any thread
    // budget (the per-column normalization count cannot depend on the
    // worker count).
    let skew_corpus = skew_stealing.scheduler.corpus.expect("corpus present");
    for threads in [1usize, 2] {
        let other = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads)
            .run(&skewed)
            .scheduler
            .corpus
            .expect("corpus present");
        assert_eq!(other, skew_corpus, "corpus counters diverged at {threads} threads");
    }

    let skew_samples = 3;
    let skew_static_secs = time_seconds(skew_samples, || {
        black_box(skew_runner.run_static(black_box(&skewed)));
    });
    let skew_stealing_secs = time_seconds(skew_samples, || {
        black_box(skew_runner.run(black_box(&skewed)));
    });

    // --- Leg 5: arena vs Vec<String> representations on the hot path. ---
    // Same matcher workload through the columnar arena: build once, then
    // every scan slices the shared buffer instead of cloning cell strings.
    let m_arena_pair = m_pair.to_arena().expect("bench columns fit u32 space");
    assert_eq!(serial_matcher.find_candidates_arena(&m_arena_pair), reference_matches);
    assert_eq!(parallel_matcher.find_candidates_arena(&m_arena_pair), reference_matches);
    let arena_matcher_secs = time_seconds(samples, || {
        black_box(serial_matcher.find_candidates_arena(black_box(&m_arena_pair)));
    });
    let arena_matcher_4t_secs = time_seconds(samples, || {
        black_box(parallel_matcher.find_candidates_arena(black_box(&m_arena_pair)));
    });
    // The equi-join side needs no separate timing: leg 2's fingerprint join
    // *is* the arena-backed path (normalization lands in shared arenas that
    // the workers slice), and its `Vec<String>` comparator is the
    // owned-string reference oracle timed alongside it.

    // --- Leg 6: isolation overhead — unguarded vs guarded pipeline. ---
    let iso_pair = matcher_pair(400);
    let iso_pipeline = JoinPipeline::new(JoinPipelineConfig::paper_default());
    let iso_budget = RunBudget::unlimited()
        .with_row_cap(u64::MAX)
        .with_byte_cap(u64::MAX);
    let iso_plain = iso_pipeline.run(&iso_pair);
    for guarded in [
        iso_pipeline.run_guarded(&iso_pair, None, None),
        iso_pipeline.run_guarded(&iso_pair, None, Some(&iso_budget)),
    ] {
        assert!(guarded.status.is_ok(), "{:?}", guarded.status);
        assert_eq!(guarded.outcome.predicted_pairs, iso_plain.predicted_pairs);
        assert_eq!(guarded.outcome.metrics, iso_plain.metrics);
        assert_eq!(guarded.outcome.candidate_pairs, iso_plain.candidate_pairs);
    }
    let iso_samples = 5;
    let iso_plain_secs = time_seconds(iso_samples, || {
        black_box(iso_pipeline.run(black_box(&iso_pair)));
    });
    let iso_guarded_secs = time_seconds(iso_samples, || {
        black_box(iso_pipeline.run_guarded(black_box(&iso_pair), None, None));
    });
    let iso_budgeted_secs = time_seconds(iso_samples, || {
        black_box(iso_pipeline.run_guarded(black_box(&iso_pair), None, Some(&iso_budget)));
    });

    let matcher_fused_speedup = m_reference_secs / m_serial_secs;
    let matcher_parallel_speedup = m_serial_secs / m_parallel_secs;
    let join_fingerprint_speedup = j_reference_secs / j_fingerprint_secs;
    let join_parallel_speedup = j_fingerprint_secs / j_fingerprint_4t_secs;
    let batch_speedup = b_serial_secs / b_parallel_secs;
    let skew_speedup = skew_static_secs / skew_stealing_secs;
    let arena_matcher_relative = m_serial_secs / arena_matcher_secs;
    let arena_matcher_parallel_relative = m_parallel_secs / arena_matcher_4t_secs;
    let guarded_relative = iso_plain_secs / iso_guarded_secs;
    let budgeted_relative = iso_plain_secs / iso_budgeted_secs;
    let summary = format!(
        "{{\n  \"benchmark\": \"join_throughput\",\n  \"threads\": {THREADS},\n  \"matcher\": {{\n    \"rows\": {matcher_rows},\n    \"samples\": {samples},\n    \"reference_median_seconds\": {m_reference_secs:.6},\n    \"fused_serial_median_seconds\": {m_serial_secs:.6},\n    \"parallel_median_seconds\": {m_parallel_secs:.6},\n    \"speedup_fused_vs_reference\": {matcher_fused_speedup:.2},\n    \"speedup_parallel_vs_fused_serial\": {matcher_parallel_speedup:.2},\n    \"candidates\": {},\n    \"outputs_bit_identical\": true\n  }},\n  \"equi_join\": {{\n    \"rows\": {join_rows},\n    \"transformations\": {},\n    \"samples\": {samples},\n    \"reference_median_seconds\": {j_reference_secs:.6},\n    \"fingerprint_median_seconds\": {j_fingerprint_secs:.6},\n    \"fingerprint_parallel_median_seconds\": {j_fingerprint_4t_secs:.6},\n    \"speedup_fingerprint_vs_reference\": {join_fingerprint_speedup:.2},\n    \"speedup_parallel_vs_serial_fingerprint\": {join_parallel_speedup:.2},\n    \"predicted_pairs\": {},\n    \"outputs_bit_identical\": true\n  }},\n  \"arena\": {{\n    \"matcher_rows\": {matcher_rows},\n    \"samples\": {samples},\n    \"vec_matcher_median_seconds\": {m_serial_secs:.6},\n    \"arena_matcher_median_seconds\": {arena_matcher_secs:.6},\n    \"vec_matcher_parallel_median_seconds\": {m_parallel_secs:.6},\n    \"arena_matcher_parallel_median_seconds\": {arena_matcher_4t_secs:.6},\n    \"relative_throughput_arena_vs_vec\": {arena_matcher_relative:.2},\n    \"relative_throughput_arena_vs_vec_parallel\": {arena_matcher_parallel_relative:.2},\n    \"equi_join_vec_reference_median_seconds\": {j_reference_secs:.6},\n    \"equi_join_arena_median_seconds\": {j_fingerprint_secs:.6},\n    \"speedup_arena_join_vs_vec_reference\": {join_fingerprint_speedup:.2},\n    \"outputs_bit_identical\": true\n  }},\n  \"batch\": {{\n    \"pairs\": {},\n    \"rows_per_pair\": 80,\n    \"samples\": {batch_samples},\n    \"budget_1_median_seconds\": {b_serial_secs:.6},\n    \"budget_4_median_seconds\": {b_parallel_secs:.6},\n    \"speedup_budget_4_vs_1\": {batch_speedup:.2},\n    \"joined_pairs\": {},\n    \"micro_f1\": {:.4},\n    \"macro_f1\": {:.4},\n    \"outcomes_bit_identical\": true\n  }},\n  \"batch_skew\": {{\n    \"pairs\": {},\n    \"rows_per_pair\": 50,\n    \"skew\": 8.0,\n    \"dominant_pair_rows\": {},\n    \"samples\": {skew_samples},\n    \"static_split_median_seconds\": {skew_static_secs:.6},\n    \"work_stealing_median_seconds\": {skew_stealing_secs:.6},\n    \"speedup_stealing_vs_static\": {skew_speedup:.2},\n    \"stolen_tasks\": {},\n    \"corpus_columns_interned\": {},\n    \"corpus_normalizations_saved\": {},\n    \"corpus_stats_reused\": {},\n    \"corpus_counts_thread_invariant\": true,\n    \"outcomes_bit_identical\": true\n  }},\n  \"isolation\": {{\n    \"rows\": 400,\n    \"samples\": {iso_samples},\n    \"unguarded_median_seconds\": {iso_plain_secs:.6},\n    \"guarded_median_seconds\": {iso_guarded_secs:.6},\n    \"guarded_budgeted_median_seconds\": {iso_budgeted_secs:.6},\n    \"relative_throughput_guarded\": {guarded_relative:.2},\n    \"relative_throughput_guarded_budgeted\": {budgeted_relative:.2},\n    \"outcomes_bit_identical\": true\n  }}\n}}\n",
        reference_matches.len(),
        transformations.len(),
        reference_pairs.len(),
        repository.len(),
        outcome_1.metrics.joined_pairs,
        outcome_1.metrics.micro.f1,
        outcome_1.metrics.macro_f1,
        skewed.len(),
        skewed[0].source.len(),
        skew_stealing.scheduler.stolen_tasks,
        skew_corpus.columns_interned,
        skew_corpus.normalizations_saved(),
        skew_corpus.stats_hits + skew_corpus.index_hits,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join.json");
    std::fs::write(path, &summary).expect("write BENCH_join.json");
    println!(
        "matcher: fused {matcher_fused_speedup:.2}x over reference \
         ({m_reference_secs:.4}s -> {m_serial_secs:.4}s), parallel {matcher_parallel_speedup:.2}x"
    );
    println!(
        "equi_join: fingerprint {join_fingerprint_speedup:.2}x over reference \
         ({j_reference_secs:.4}s -> {j_fingerprint_secs:.4}s), parallel {join_parallel_speedup:.2}x"
    );
    println!("batch: budget 4 {batch_speedup:.2}x over budget 1 ({b_serial_secs:.4}s -> {b_parallel_secs:.4}s)");
    println!(
        "batch_skew: stealing {skew_speedup:.2}x over static split \
         ({skew_static_secs:.4}s -> {skew_stealing_secs:.4}s), {} stolen tasks, \
         {} column normalizations saved by the corpus",
        skew_stealing.scheduler.stolen_tasks,
        skew_corpus.normalizations_saved(),
    );
    println!(
        "arena: matcher at {arena_matcher_relative:.2}x of the Vec<String> path serial \
         ({m_serial_secs:.4}s -> {arena_matcher_secs:.4}s), \
         {arena_matcher_parallel_relative:.2}x at {THREADS} threads"
    );
    println!(
        "isolation: guarded at {guarded_relative:.2}x of unguarded throughput \
         ({iso_plain_secs:.4}s -> {iso_guarded_secs:.4}s), budgeted at {budgeted_relative:.2}x"
    );
    println!("summary written to {path}");
    // Hard gates are output identity (asserted above). Wall-clock ratios
    // are *tracked* in the JSON, not tightly gated: medians of 5-7 samples
    // on a contended one-core CI runner shift by tens of percent, and this
    // bench runs on every push — the asserts below only catch order-of-
    // magnitude pathology (a leg collapsing to half speed or worse).
    assert!(
        matcher_fused_speedup > 0.5 && join_fingerprint_speedup > 0.5,
        "structural legs collapsed: fused matcher {matcher_fused_speedup:.2}x, \
         fingerprint join {join_fingerprint_speedup:.2}x vs their references"
    );
    assert!(
        matcher_parallel_speedup > 0.5 && join_parallel_speedup > 0.5 && batch_speedup > 0.5,
        "parallel legs collapsed: matcher {matcher_parallel_speedup:.2}x, \
         join {join_parallel_speedup:.2}x, batch {batch_speedup:.2}x \
         (one-core box — thread wins are multicore headroom)"
    );
    assert!(
        skew_speedup > 0.5,
        "work stealing collapsed to {skew_speedup:.2}x of the static split on the \
         skewed repository (one-core box — the scheduling win is multicore headroom)"
    );
    assert!(
        arena_matcher_relative > 0.5 && arena_matcher_parallel_relative > 0.5,
        "arena representation collapsed: serial at {arena_matcher_relative:.2}x, \
         parallel at {arena_matcher_parallel_relative:.2}x of the Vec<String> path"
    );
    assert!(
        guarded_relative > 0.5 && budgeted_relative > 0.5,
        "fault isolation stopped being cheap: guarded at {guarded_relative:.2}x, \
         budgeted at {budgeted_relative:.2}x of unguarded throughput"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matcher, join_throughput_comparison
}
criterion_main!(benches);
