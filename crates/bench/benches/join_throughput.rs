//! Repository-scale matching + join benchmark, tracking three claims in
//! `BENCH_join.json` at the workspace root:
//!
//! * **Serial vs parallel matcher**: the planned parallel scan (shared
//!   stats/index built once, fused per-size representative selection, row
//!   chunks across 4 workers) against the retained size-major oracle
//!   (`tjoin_matching::reference`) and against its own single-threaded run.
//!   On this one-core CI box the thread win is scheduling-bound; the fused
//!   selection win over the oracle is the hard claim.
//! * **Reference vs fingerprint equi-join**: the owned-string-keyed oracle
//!   (`tjoin_join::reference`) against the fingerprint join (normalize
//!   once, u64 buckets, exact confirm) at 1 and 4 threads.
//! * **Batch runner throughput**: the heterogeneous generated repository
//!   driven by `BatchJoinRunner` at thread budgets 1 and 4, with identical
//!   outcomes asserted.
//!
//! Outputs are asserted bit-identical across every leg before timing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tjoin_bench::time_seconds;
use tjoin_datasets::{ColumnPair, RepositoryConfig};
use tjoin_join::reference::equi_join_reference;
use tjoin_join::{BatchJoinRunner, JoinPipeline, JoinPipelineConfig};
use tjoin_matching::reference::find_candidates_reference;
use tjoin_matching::{NGramMatcher, NGramMatcherConfig};
use tjoin_units::{Transformation, Unit};

const THREADS: usize = 4;

/// The matcher workload: name-style rows with shared surface structure
/// (every row contains ", " and the "last"/"first" stems) so representative
/// selection has real competition at every size.
fn matcher_pair(rows: usize) -> ColumnPair {
    let source: Vec<String> = (0..rows)
        .map(|i| format!("lastname{i:05}, firstname{i:05} dept{:02}", i % 23))
        .collect();
    let target: Vec<String> = (0..rows)
        .map(|i| format!("f{i:05} lastname{i:05}"))
        .collect();
    ColumnPair::aligned("bench-matcher", source, target)
}

/// The equi-join workload: a large 1:1 pair plus a block of duplicated
/// target values for many-to-many fan-out. Values are realistically long
/// (~30 characters) so the per-probe string hashing the fingerprint join
/// removes is a real cost in the reference.
fn join_pair(rows: usize) -> ColumnPair {
    let source: Vec<String> = (0..rows)
        .map(|i| format!("lastname-of-the-house-{i:05}, firstname{i:05}"))
        .collect();
    let mut target: Vec<String> = (0..rows)
        .map(|i| format!("f lastname-of-the-house-{i:05}"))
        .collect();
    for i in 0..rows / 100 {
        // 1% of targets duplicate their neighbor's value.
        target[i * 100 + 1] = target[i * 100].clone();
    }
    ColumnPair::aligned("bench-join", source, target)
}

fn join_transformations() -> Vec<Transformation> {
    vec![
        // The covering rule.
        Transformation::new(vec![
            Unit::split_substr(' ', 1, 0, 1),
            Unit::literal(" "),
            Unit::split(',', 0),
        ]),
        // Rules that apply but rarely or never match a target.
        Transformation::single(Unit::split(',', 0)),
        Transformation::single(Unit::substr(0, 8)),
        Transformation::new(vec![Unit::split(',', 0), Unit::literal("-x")]),
    ]
}

fn bench_matcher(c: &mut Criterion) {
    let pair = matcher_pair(400);
    let serial = NGramMatcher::new(NGramMatcherConfig::default());
    let parallel = NGramMatcher::new(NGramMatcherConfig::default().with_threads(THREADS));
    let mut group = c.benchmark_group("matcher_throughput");
    group.sample_size(10);
    group.bench_function("serial_400", |b| {
        b.iter(|| black_box(serial.find_candidates(black_box(&pair))))
    });
    group.bench_function("parallel_4t_400", |b| {
        b.iter(|| black_box(parallel.find_candidates(black_box(&pair))))
    });
    group.finish();
}

fn join_throughput_comparison(_c: &mut Criterion) {
    // --- Leg 1: matcher — reference vs fused serial vs parallel. ---
    let matcher_rows = 1_000;
    let m_pair = matcher_pair(matcher_rows);
    let m_config = NGramMatcherConfig::default();
    let reference_matches = find_candidates_reference(&m_config, &m_pair);
    let serial_matcher = NGramMatcher::new(m_config.clone());
    let parallel_matcher = NGramMatcher::new(m_config.clone().with_threads(THREADS));
    assert_eq!(serial_matcher.find_candidates(&m_pair), reference_matches);
    assert_eq!(parallel_matcher.find_candidates(&m_pair), reference_matches);
    assert!(!reference_matches.is_empty());

    let samples = 7;
    let m_reference_secs =
        time_seconds(samples, || {
            black_box(find_candidates_reference(&m_config, black_box(&m_pair)));
        });
    let m_serial_secs = time_seconds(samples, || {
        black_box(serial_matcher.find_candidates(black_box(&m_pair)));
    });
    let m_parallel_secs = time_seconds(samples, || {
        black_box(parallel_matcher.find_candidates(black_box(&m_pair)));
    });

    // --- Leg 2: equi-join — reference vs fingerprint at 1 and 4 threads. ---
    let join_rows = 20_000;
    let j_pair = join_pair(join_rows);
    let transformations = join_transformations();
    let refs: Vec<&Transformation> = transformations.iter().collect();
    let config_1t = JoinPipelineConfig::paper_default();
    let config_4t = JoinPipelineConfig::paper_default().with_threads(THREADS);
    let pipeline_1t = JoinPipeline::new(config_1t.clone());
    let pipeline_4t = JoinPipeline::new(config_4t);
    let reference_pairs =
        equi_join_reference(&j_pair, refs.iter().copied(), &config_1t.synthesis.normalize);
    assert_eq!(pipeline_1t.equi_join(&j_pair, refs.iter().copied()), reference_pairs);
    assert_eq!(pipeline_4t.equi_join(&j_pair, refs.iter().copied()), reference_pairs);
    // The duplicated-target fan-out block must be present in the output:
    // source row 0 pairs with target rows 0 and 1.
    assert!(reference_pairs.len() >= join_rows);
    assert!(reference_pairs.contains(&(0, 0)) && reference_pairs.contains(&(0, 1)));

    let j_reference_secs = time_seconds(samples, || {
        black_box(equi_join_reference(
            black_box(&j_pair),
            refs.iter().copied(),
            &config_1t.synthesis.normalize,
        ));
    });
    let j_fingerprint_secs = time_seconds(samples, || {
        black_box(pipeline_1t.equi_join(black_box(&j_pair), refs.iter().copied()));
    });
    let j_fingerprint_4t_secs = time_seconds(samples, || {
        black_box(pipeline_4t.equi_join(black_box(&j_pair), refs.iter().copied()));
    });

    // --- Leg 3: batch runner over the generated repository. ---
    let repository = RepositoryConfig::new(12, 80).generate(7);
    let batch_1 = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 1);
    let batch_4 = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), THREADS);
    let outcome_1 = batch_1.run(&repository);
    let outcome_4 = batch_4.run(&repository);
    for (a, b) in outcome_1.reports.iter().zip(&outcome_4.reports) {
        assert_eq!(a.outcome.predicted_pairs, b.outcome.predicted_pairs, "{}", a.name);
    }
    assert!(outcome_1.metrics.joined_pairs >= 6, "{:?}", outcome_1.metrics);

    let batch_samples = 5;
    let b_serial_secs = time_seconds(batch_samples, || {
        black_box(batch_1.run(black_box(&repository)));
    });
    let b_parallel_secs = time_seconds(batch_samples, || {
        black_box(batch_4.run(black_box(&repository)));
    });

    let matcher_fused_speedup = m_reference_secs / m_serial_secs;
    let matcher_parallel_speedup = m_serial_secs / m_parallel_secs;
    let join_fingerprint_speedup = j_reference_secs / j_fingerprint_secs;
    let join_parallel_speedup = j_fingerprint_secs / j_fingerprint_4t_secs;
    let batch_speedup = b_serial_secs / b_parallel_secs;
    let summary = format!(
        "{{\n  \"benchmark\": \"join_throughput\",\n  \"threads\": {THREADS},\n  \"matcher\": {{\n    \"rows\": {matcher_rows},\n    \"samples\": {samples},\n    \"reference_median_seconds\": {m_reference_secs:.6},\n    \"fused_serial_median_seconds\": {m_serial_secs:.6},\n    \"parallel_median_seconds\": {m_parallel_secs:.6},\n    \"speedup_fused_vs_reference\": {matcher_fused_speedup:.2},\n    \"speedup_parallel_vs_fused_serial\": {matcher_parallel_speedup:.2},\n    \"candidates\": {},\n    \"outputs_bit_identical\": true\n  }},\n  \"equi_join\": {{\n    \"rows\": {join_rows},\n    \"transformations\": {},\n    \"samples\": {samples},\n    \"reference_median_seconds\": {j_reference_secs:.6},\n    \"fingerprint_median_seconds\": {j_fingerprint_secs:.6},\n    \"fingerprint_parallel_median_seconds\": {j_fingerprint_4t_secs:.6},\n    \"speedup_fingerprint_vs_reference\": {join_fingerprint_speedup:.2},\n    \"speedup_parallel_vs_serial_fingerprint\": {join_parallel_speedup:.2},\n    \"predicted_pairs\": {},\n    \"outputs_bit_identical\": true\n  }},\n  \"batch\": {{\n    \"pairs\": {},\n    \"rows_per_pair\": 80,\n    \"samples\": {batch_samples},\n    \"budget_1_median_seconds\": {b_serial_secs:.6},\n    \"budget_4_median_seconds\": {b_parallel_secs:.6},\n    \"speedup_budget_4_vs_1\": {batch_speedup:.2},\n    \"joined_pairs\": {},\n    \"micro_f1\": {:.4},\n    \"macro_f1\": {:.4},\n    \"outcomes_bit_identical\": true\n  }}\n}}\n",
        reference_matches.len(),
        transformations.len(),
        reference_pairs.len(),
        repository.len(),
        outcome_1.metrics.joined_pairs,
        outcome_1.metrics.micro.f1,
        outcome_1.metrics.macro_f1,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join.json");
    std::fs::write(path, &summary).expect("write BENCH_join.json");
    println!(
        "matcher: fused {matcher_fused_speedup:.2}x over reference \
         ({m_reference_secs:.4}s -> {m_serial_secs:.4}s), parallel {matcher_parallel_speedup:.2}x"
    );
    println!(
        "equi_join: fingerprint {join_fingerprint_speedup:.2}x over reference \
         ({j_reference_secs:.4}s -> {j_fingerprint_secs:.4}s), parallel {join_parallel_speedup:.2}x"
    );
    println!("batch: budget 4 {batch_speedup:.2}x over budget 1 ({b_serial_secs:.4}s -> {b_parallel_secs:.4}s)");
    println!("summary written to {path}");
    // Hard gates are output identity (asserted above). Wall-clock ratios
    // are *tracked* in the JSON, not tightly gated: medians of 5-7 samples
    // on a contended one-core CI runner shift by tens of percent, and this
    // bench runs on every push — the asserts below only catch order-of-
    // magnitude pathology (a leg collapsing to half speed or worse).
    assert!(
        matcher_fused_speedup > 0.5 && join_fingerprint_speedup > 0.5,
        "structural legs collapsed: fused matcher {matcher_fused_speedup:.2}x, \
         fingerprint join {join_fingerprint_speedup:.2}x vs their references"
    );
    assert!(
        matcher_parallel_speedup > 0.5 && join_parallel_speedup > 0.5 && batch_speedup > 0.5,
        "parallel legs collapsed: matcher {matcher_parallel_speedup:.2}x, \
         join {join_parallel_speedup:.2}x, batch {batch_speedup:.2}x \
         (one-core box — thread wins are multicore headroom)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matcher, join_throughput_comparison
}
criterion_main!(benches);
