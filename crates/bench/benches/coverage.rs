//! Coverage-phase benchmark: the naive per-row trial loop (retained in
//! `tjoin_core::coverage::reference`) vs the interned engine (unit pool +
//! per-row output memoization + bitset cache + bitmap coverage).
//!
//! Besides the criterion benchmarks, `coverage_comparison` times both paths
//! head-to-head on a synthetic workload of 2,304 transformations × 200 rows
//! and writes a machine-readable summary to `BENCH_coverage.json` at the
//! workspace root, so the perf trajectory of the dominant phase is tracked
//! from PR 1 onward.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tjoin_bench::time_seconds;
use tjoin_core::coverage::reference::compute_coverage_reference;
use tjoin_core::coverage::{compute_coverage, CoverageOutcome};
use tjoin_core::{PairSet, SynthesisConfig};
use tjoin_units::{Transformation, Unit};

/// Rows in the shape of the paper's running example ("last, first" →
/// "f last"), padded so unit applications do real character work.
fn workload_rows(rows: usize) -> PairSet {
    let raw: Vec<(String, String)> = (0..rows)
        .map(|i| {
            (
                format!("lastname{i:03}, firstname{i:03} middle{:02}", i % 37),
                format!("f{i:03} lastname{i:03}"),
            )
        })
        .collect();
    PairSet::from_strings(&raw, &SynthesisConfig::default().normalize)
}

/// A candidate set shaped like real generation output: the Cartesian product
/// of a small unit pool, so the same units recur across many candidates
/// (which is exactly what the cache and the memoization exploit).
fn workload_transformations() -> Vec<Transformation> {
    let mut first_units = Vec::new();
    let mut middle_units = Vec::new();
    let mut last_units = Vec::new();
    for k in 0..16usize {
        first_units.push(Unit::split_substr(' ', 1, k % 4, k % 4 + 1));
        first_units.push(Unit::substr(k, k + 4));
        middle_units.push(Unit::literal(if k % 2 == 0 { " " } else { "-" }));
        middle_units.push(Unit::literal(format!("{k:02}")));
        last_units.push(Unit::split(',', k % 3));
        last_units.push(Unit::split_substr(',', 0, k % 5, k % 5 + 6));
    }
    let mut ts = Vec::new();
    for f in &first_units {
        for m in &middle_units {
            for l in last_units.iter().step_by(4) {
                ts.push(Transformation::new(vec![f.clone(), m.clone(), l.clone()]));
            }
        }
    }
    ts
}

fn assert_outcomes_identical(a: &CoverageOutcome, b: &CoverageOutcome) {
    assert_eq!(a.covered_rows, b.covered_rows, "covered rows diverged");
    assert_eq!(a.trials, b.trials, "trial counts diverged");
    assert_eq!(a.cache_hits, b.cache_hits, "cache-hit counts diverged");
    assert_eq!(a.potential_trials, b.potential_trials);
}

fn bench_coverage_interned(c: &mut Criterion) {
    let pairs = workload_rows(200);
    let ts = workload_transformations();
    let mut group = c.benchmark_group("coverage_interned");
    group.sample_size(10);
    group.bench_function("reference", |b| {
        b.iter(|| black_box(compute_coverage_reference(black_box(&ts), &pairs, true, 1)))
    });
    group.bench_function("interned", |b| {
        b.iter(|| black_box(compute_coverage(black_box(&ts), &pairs, true, 1)))
    });
    group.finish();
}

fn coverage_comparison(_c: &mut Criterion) {
    let pairs = workload_rows(200);
    let ts = workload_transformations();
    assert!(
        ts.len() >= 2_000,
        "workload must have at least 2,000 transformations, got {}",
        ts.len()
    );

    let reference_outcome = compute_coverage_reference(&ts, &pairs, true, 1);
    let interned_outcome = compute_coverage(&ts, &pairs, true, 1);
    assert_outcomes_identical(&reference_outcome, &interned_outcome);

    let samples = 11;
    let reference_secs = time_seconds(samples, || {
        black_box(compute_coverage_reference(black_box(&ts), &pairs, true, 1));
    });
    let interned_secs = time_seconds(samples, || {
        black_box(compute_coverage(black_box(&ts), &pairs, true, 1));
    });
    let speedup = reference_secs / interned_secs;

    let summary = format!(
        "{{\n  \"benchmark\": \"coverage_interned\",\n  \"transformations\": {},\n  \"rows\": {},\n  \"use_cache\": true,\n  \"samples\": {},\n  \"reference_median_seconds\": {:.6},\n  \"interned_median_seconds\": {:.6},\n  \"speedup\": {:.2},\n  \"outcomes_bit_identical\": true,\n  \"reference_unit_evaluations\": {},\n  \"interned_unit_evaluations\": {}\n}}\n",
        ts.len(),
        pairs.len(),
        samples,
        reference_secs,
        interned_secs,
        speedup,
        reference_outcome.unit_evaluations,
        interned_outcome.unit_evaluations,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_coverage.json");
    std::fs::write(path, &summary).expect("write BENCH_coverage.json");
    println!(
        "coverage_comparison: speedup {speedup:.2}x (reference {reference_secs:.4}s vs interned {interned_secs:.4}s per iter)"
    );
    println!("summary written to {path}");
    assert!(
        speedup >= 2.0,
        "interned coverage must be at least 2x faster, got {speedup:.2}x"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_coverage_interned, coverage_comparison
}
criterion_main!(benches);
