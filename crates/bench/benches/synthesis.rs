//! End-to-end synthesis benchmarks over the synthetic workloads (the
//! Criterion counterpart of Figures 4a/4b: runtime vs rows and vs length).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tjoin_core::{PairSet, SynthesisConfig, SynthesisEngine};
use tjoin_datasets::SyntheticConfig;

fn pairs_for(rows: usize, length: usize) -> PairSet {
    let dataset = SyntheticConfig::with_fixed_length(rows, length).generate(7);
    let pair = dataset.column_pair();
    let values: Vec<(String, String)> = pair
        .source
        .iter()
        .cloned()
        .zip(pair.target.iter().cloned())
        .collect();
    PairSet::from_strings(&values, &SynthesisConfig::default().normalize)
}

fn bench_vs_rows(c: &mut Criterion) {
    let engine = SynthesisEngine::new(SynthesisConfig::default());
    let mut group = c.benchmark_group("synthesis_vs_rows");
    group.sample_size(10);
    for rows in [25usize, 50, 100] {
        let pairs = pairs_for(rows, 28);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| black_box(engine.discover(black_box(&pairs))))
        });
    }
    group.finish();
}

fn bench_vs_length(c: &mut Criterion) {
    let engine = SynthesisEngine::new(SynthesisConfig::default());
    let mut group = c.benchmark_group("synthesis_vs_length");
    group.sample_size(10);
    for length in [24usize, 48, 96] {
        let pairs = pairs_for(40, length);
        group.bench_with_input(BenchmarkId::from_parameter(length), &length, |b, _| {
            b.iter(|| black_box(engine.discover(black_box(&pairs))))
        });
    }
    group.finish();
}

fn bench_real_shape(c: &mut Criterion) {
    // The paper's motivating name-abbreviation workload at web-table size.
    let pairs: Vec<(String, String)> = tjoin_datasets::realistic::web_tables(3)
        .into_iter()
        .find(|p| p.name.contains("staff-names"))
        .expect("staff-names pair")
        .column_pair()
        .golden_values()
        .iter()
        .map(|(s, t)| (s.to_string(), t.to_string()))
        .collect();
    let set = PairSet::from_strings(&pairs, &SynthesisConfig::default().normalize);
    let engine = SynthesisEngine::new(SynthesisConfig::default());
    let mut group = c.benchmark_group("synthesis_web_pair");
    group.sample_size(10);
    group.bench_function("staff_names_92_rows", |b| {
        b.iter(|| black_box(engine.discover(black_box(&set))))
    });
    group.finish();
}

criterion_group!(benches, bench_vs_rows, bench_vs_length, bench_real_shape);
criterion_main!(benches);
