//! Benchmarks for the row-matching substrate: inverted-index construction
//! and Algorithm 1 candidate-pair detection.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tjoin_datasets::SyntheticConfig;
use tjoin_matching::NGramMatcher;
use tjoin_text::NGramIndex;

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("ngram_index_build");
    group.sample_size(20);
    for rows in [100usize, 500] {
        let dataset = SyntheticConfig::synth(rows).generate(1);
        let column = dataset.column_pair().target;
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| black_box(NGramIndex::build(black_box(&column), 4, 20)))
        });
    }
    group.finish();
}

fn bench_row_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_matching_algorithm1");
    group.sample_size(10);
    for rows in [50usize, 200] {
        let pair = SyntheticConfig::synth(rows).generate(2).column_pair();
        let matcher = NGramMatcher::with_defaults();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| black_box(matcher.find_candidates(black_box(&pair))))
        });
    }
    group.finish();
}

fn bench_open_data_matching(c: &mut Criterion) {
    // The skewed address workload: the matcher's worst case.
    let pair = tjoin_datasets::realistic::open_data(1, 400).column_pair();
    let matcher = NGramMatcher::with_defaults();
    let mut group = c.benchmark_group("row_matching_open_data");
    group.sample_size(10);
    group.bench_function("open_data_400_rows", |b| {
        b.iter(|| black_box(matcher.find_candidates(black_box(&pair))))
    });
    group.finish();
}

criterion_group!(benches, bench_index_build, bench_row_matching, bench_open_data_matching);
criterion_main!(benches);
