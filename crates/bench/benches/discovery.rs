//! Discovery benchmark, tracking the signature-shortlist claims in
//! `BENCH_discovery.json` at the workspace root:
//!
//! * **Shortlist vs all-pairs**: a decoy-dominated 120-column repository
//!   (60 pairs, ≥ 100 tables) run end-to-end through
//!   `BatchJoinRunner::discover_and_run` against the brute-force all-pairs
//!   batch run. Outcomes over the shortlisted pairs are asserted
//!   bit-identical to the plain runner before timing; the shortlist must
//!   prune ≥ 80 % of the pair space (hard gate) and recall every pair the
//!   all-pairs run can join (hard gate: recall 1.0).
//! * **Decoy quality**: the repository generator's decoys (ground truth:
//!   empty golden mapping, `tjoin_datasets::is_decoy`) become a measured
//!   recall/precision benchmark — generator-label recall and decoy
//!   precision land in the JSON instead of a zero-only gate.
//! * **Index vs reference**: the inverted-index scorer over the full
//!   120 × 120 column cross product against the brute-force pairwise
//!   oracle, asserted bit-identical before timing.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tjoin_bench::time_seconds;
use tjoin_datasets::{is_decoy, RepositoryConfig};
use tjoin_discovery::{corpus_signature, discover, discover_reference};
use tjoin_join::{
    BatchJoinOutcome, BatchJoinRunner, DiscoveryConfig, JoinPipelineConfig,
};
use tjoin_text::{ColumnSignature, GramCorpus, NormalizeOptions};

const THREADS: usize = 4;
const PAIRS: usize = 60;
const ROWS: usize = 80;
const DECOY_FRACTION: f64 = 0.95;

/// Results-only outcome comparison (wall-clock fields and scheduling
/// counters are measurements, not results).
fn assert_outcomes_identical(a: &BatchJoinOutcome, b: &BatchJoinOutcome, context: &str) {
    assert_eq!(a.reports.len(), b.reports.len(), "{context}: report count");
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.name, rb.name, "{context}: report order");
        assert_eq!(ra.status, rb.status, "{context}: status of {}", ra.name);
        assert_eq!(
            ra.outcome.predicted_pairs, rb.outcome.predicted_pairs,
            "{context}: predicted pairs of {}",
            ra.name
        );
        assert_eq!(ra.outcome.metrics, rb.outcome.metrics, "{context}: metrics of {}", ra.name);
    }
    assert_eq!(a.metrics.micro, b.metrics.micro, "{context}: micro metrics");
    assert_eq!(a.metrics.macro_f1, b.metrics.macro_f1, "{context}: macro F1");
}

fn discovery_comparison(_c: &mut Criterion) {
    // 60 pairs = 120 distinct columns (tables), 85 % decoys: the
    // repository-scale regime where almost every candidate pair is not
    // joinable and the all-pairs pipeline run is almost entirely wasted.
    let repository =
        RepositoryConfig::new(PAIRS, ROWS).with_decoys(DECOY_FRACTION).generate(23);
    let tables = repository.len() * 2;
    assert!(tables >= 100, "the bench repo must span at least 100 tables");
    let decoys = repository.iter().filter(|p| is_decoy(p)).count();
    let joinable_pairs = repository.len() - decoys;
    let config = JoinPipelineConfig::paper_default();
    let runner = BatchJoinRunner::new(config.clone(), THREADS);
    // `paper_default` keeps `min_anchor_overlap = 1`, the only setting with
    // the recall-1.0 soundness guarantee: a pipeline-joinable pair can hinge
    // on a single shared 4-gram, so any higher evidence floor can prune a
    // pair the full pipeline would join (decoys included — the pipeline
    // sometimes joins a decoy by accident, and the oracle gate below counts
    // those too). Rows per column are sized so accidental single-gram
    // collisions between unrelated columns stay rare enough for the ≥ 0.8
    // pruning gate.
    let discovery = DiscoveryConfig::paper_default().with_threads(THREADS);

    // --- Identity and quality gates, before any timing. ---
    let all_pairs = runner.run(&repository);
    let discovered = runner.discover_and_run(&repository, &discovery);
    let shortlist = &discovered.shortlist;
    let retained: Vec<usize> = shortlist.ranked.iter().map(|entry| entry.index).collect();

    // Recall 1.0 against the all-pairs pipeline oracle (hard gate).
    let pipeline_joinable: Vec<usize> = all_pairs
        .reports
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.outcome.predicted_pairs.is_empty())
        .map(|(i, _)| i)
        .collect();
    for &index in &pipeline_joinable {
        assert!(
            retained.contains(&index),
            "pipeline-joinable pair {} pruned from the shortlist",
            repository[index].name
        );
    }
    assert!(!pipeline_joinable.is_empty(), "the recall gate must bite");

    // Pruning ratio ≥ 0.8 on the repository's pair space (hard gate).
    let pruning_ratio = shortlist.pruning_ratio();
    assert!(
        pruning_ratio >= 0.8,
        "shortlist pruned only {pruning_ratio:.3} of the pair space"
    );

    // Decoy quality: measured recall/precision against the generator's
    // ground-truth labels (empty golden mapping).
    let retained_joinable = retained.iter().filter(|&&i| !is_decoy(&repository[i])).count();
    let label_recall = retained_joinable as f64 / joinable_pairs as f64;
    let decoy_precision = retained_joinable as f64 / retained.len().max(1) as f64;

    // The discovered outcome is the plain runner over the shortlist.
    let sublist: Vec<_> =
        shortlist.ranked.iter().map(|entry| repository[entry.index].clone()).collect();
    assert_outcomes_identical(
        &discovered.outcome,
        &runner.run(&sublist),
        "discover_and_run vs plain run",
    );
    assert!(
        discovered.outcome.metrics.joined_pairs > 0,
        "the shortlisted pairs must produce real predictions"
    );

    // Index vs brute-force reference over the full column cross product.
    let corpus = GramCorpus::new(NormalizeOptions::default());
    let columns: Vec<Arc<ColumnSignature>> = repository
        .iter()
        .flat_map(|p| [&p.source, &p.target])
        .map(|cells| corpus_signature(&corpus, cells, &discovery).expect("fault-free build"))
        .collect();
    let indexed = discover(&columns, &columns, &discovery);
    assert_eq!(
        indexed,
        discover_reference(&columns, &columns, &discovery),
        "indexed discovery diverged from the brute-force oracle"
    );
    let cross_ratio = indexed.pruning_ratio();

    // --- Timings. ---
    let samples = 5;
    let all_pairs_secs = time_seconds(samples, || {
        black_box(runner.run(black_box(&repository)));
    });
    let discover_secs = time_seconds(samples, || {
        black_box(runner.discover_and_run(black_box(&repository), &discovery));
    });
    let index_secs = time_seconds(samples, || {
        black_box(discover(black_box(&columns), black_box(&columns), &discovery));
    });
    let reference_secs = time_seconds(samples, || {
        black_box(discover_reference(black_box(&columns), black_box(&columns), &discovery));
    });

    let speedup = all_pairs_secs / discover_secs;
    let summary = format!(
        "{{\n  \"benchmark\": \"discovery\",\n  \"threads\": {THREADS},\n  \"workload\": {{\n    \"tables\": {tables},\n    \"pairs\": {PAIRS},\n    \"rows_per_pair\": {ROWS},\n    \"decoy_fraction\": {DECOY_FRACTION},\n    \"decoy_pairs\": {decoys},\n    \"joinable_pairs\": {joinable_pairs}\n  }},\n  \"shortlist\": {{\n    \"min_anchor_overlap\": {},\n    \"retained\": {},\n    \"pruning_ratio\": {pruning_ratio:.4},\n    \"cross_product_pruning_ratio\": {cross_ratio:.4},\n    \"recall_vs_pipeline_oracle\": 1.0,\n    \"recall_vs_generator_labels\": {label_recall:.4},\n    \"decoy_precision\": {decoy_precision:.4},\n    \"outcomes_bit_identical\": true\n  }},\n  \"wall_clock\": {{\n    \"samples\": {samples},\n    \"all_pairs_median_seconds\": {all_pairs_secs:.6},\n    \"discover_and_run_median_seconds\": {discover_secs:.6},\n    \"speedup_discover_vs_all_pairs\": {speedup:.2},\n    \"index_cross_product_seconds\": {index_secs:.6},\n    \"reference_cross_product_seconds\": {reference_secs:.6}\n  }}\n}}\n",
        discovery.min_anchor_overlap,
        retained.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_discovery.json");
    std::fs::write(path, &summary).expect("write BENCH_discovery.json");
    println!(
        "discovery: shortlist pruned {pruning_ratio:.2} of {PAIRS} pairs, \
         discover_and_run {speedup:.2}x over all-pairs ({all_pairs_secs:.4}s -> {discover_secs:.4}s), \
         decoy precision {decoy_precision:.2}"
    );
    println!("summary written to {path}");
    // Discovery exists to beat running everything; anything else is a
    // regression in the shortlist or the signature cache.
    assert!(
        discover_secs < all_pairs_secs,
        "discovery-first ({discover_secs:.4}s) must be strictly below all-pairs ({all_pairs_secs:.4}s)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = discovery_comparison
}
criterion_main!(benches);
