//! Incremental joinability benchmark, tracking the delta-maintenance claim
//! in `BENCH_incremental.json` at the workspace root.
//!
//! A hot-skewed append workload (one large pair absorbing a stream of
//! small same-family appends) is maintained two ways:
//!
//! * **Incremental**: one full pipeline run, then [`IncrementalJoin`]
//!   append steps — coverage scored over the delta rows only, the retained
//!   transformation set re-applied, synthesis re-run only below the
//!   quality floor (never, on this clean workload).
//! * **Rebuild**: the same initial run, then a full pipeline run from
//!   scratch after every append — the pre-incremental baseline.
//!
//! Before timing, the final states are asserted results-identical: the
//! incremental path's predicted pairs and metrics equal a fresh full run
//! over the final grown pair. The hard gate then requires the incremental
//! wall-clock strictly below the rebuild wall-clock — delta maintenance
//! must beat recomputation on the workload shape it exists for.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tjoin_bench::time_seconds;
use tjoin_datasets::{row_id, AppendWorkloadConfig, ColumnPair, RepositoryConfig};
use tjoin_join::{
    IncrementalJoin, IncrementalJoinConfig, JoinPipeline, JoinPipelineConfig, RowMatchingStrategy,
};

const THREADS: usize = 4;
const SEED: u64 = 23;

fn append_aligned(pair: &mut ColumnPair, rows: &[(String, String)]) {
    for (source, target) in rows {
        let s = row_id(pair.source.len());
        let t = row_id(pair.target.len());
        pair.source.push(source.clone());
        pair.target.push(target.clone());
        pair.golden.push((s, t));
    }
}

fn incremental_vs_rebuild(_c: &mut Criterion) {
    // One large clean pair plus a stream of small same-family appends —
    // the skewed shape where a rebuild re-synthesizes an ever-growing
    // column for every few appended rows.
    let workload = AppendWorkloadConfig {
        repository: RepositoryConfig::new(1, 300).with_decoys(0.0).with_noise(0.0),
        appends: 8,
        rows_per_append: 10,
    }
    .generate(SEED);
    let base = workload.base[0].clone();
    let config = JoinPipelineConfig {
        matching: RowMatchingStrategy::Golden,
        ..JoinPipelineConfig::default()
    }
    .with_threads(THREADS);
    let floor = IncrementalJoinConfig { resynthesis_floor: 1.0 };

    // --- Identity before timing: the incremental final state must be
    // results-identical to a fresh full run over the final pair. ---
    let mut live = IncrementalJoin::new(config.clone(), floor.clone(), base.clone());
    let mut resyntheses = 0usize;
    for step in &workload.steps {
        if live.append(&step.rows).resynthesized {
            resyntheses += 1;
        }
    }
    assert_eq!(resyntheses, 0, "a clean same-family stream must never re-synthesize");
    let final_rows = live.pair().source.len();
    let fresh = JoinPipeline::new(config.clone()).run(live.pair());
    assert!(fresh.metrics.true_positives > 0, "the workload must actually join");
    assert_eq!(
        live.outcome().predicted_pairs,
        fresh.predicted_pairs,
        "incremental predictions diverge from the full run on the final pair"
    );
    assert_eq!(
        live.outcome().metrics,
        fresh.metrics,
        "incremental metrics diverge from the full run on the final pair"
    );

    // --- Timings: both legs include the one unavoidable initial run; the
    // rebuild leg then re-runs the full pipeline per append. ---
    let samples = 5;
    let incremental_secs = time_seconds(samples, || {
        let mut live =
            IncrementalJoin::new(config.clone(), floor.clone(), black_box(base.clone()));
        for step in &workload.steps {
            black_box(live.append(&step.rows));
        }
    });
    let rebuild_secs = time_seconds(samples, || {
        let pipeline = JoinPipeline::new(config.clone());
        let mut pair = black_box(base.clone());
        black_box(pipeline.run(&pair));
        for step in &workload.steps {
            append_aligned(&mut pair, &step.rows);
            black_box(pipeline.run(&pair));
        }
    });

    let speedup = rebuild_secs / incremental_secs;
    let summary = format!(
        "{{\n  \"benchmark\": \"incremental\",\n  \"threads\": {THREADS},\n  \"workload\": {{\n    \"seed\": {SEED},\n    \"base_rows\": {},\n    \"appends\": {},\n    \"rows_per_append\": 10,\n    \"final_rows\": {final_rows},\n    \"resynthesis_floor\": 1.0,\n    \"resyntheses\": {resyntheses}\n  }},\n  \"incremental_vs_rebuild\": {{\n    \"samples\": {samples},\n    \"incremental_median_seconds\": {incremental_secs:.6},\n    \"rebuild_median_seconds\": {rebuild_secs:.6},\n    \"speedup_incremental_vs_rebuild\": {speedup:.2},\n    \"outcomes_results_identical\": true\n  }}\n}}\n",
        base.source.len(),
        workload.steps.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    std::fs::write(path, &summary).expect("write BENCH_incremental.json");
    println!(
        "incremental: {speedup:.2}x over rebuild-per-append \
         ({rebuild_secs:.4}s -> {incremental_secs:.4}s) across {} appends",
        workload.steps.len()
    );
    println!("summary written to {path}");
    // The tentpole gate: delta maintenance must beat rebuilding from
    // scratch on the skewed append workload, on any box.
    assert!(
        incremental_secs < rebuild_secs,
        "incremental maintenance ({incremental_secs:.4}s) must be strictly below \
         rebuild-per-append ({rebuild_secs:.4}s)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = incremental_vs_rebuild
}
criterion_main!(benches);
