//! Memo-sharing and axis-planning benchmark for the parallel coverage
//! engine, tracking two claims in `BENCH_memo.json` at the workspace root:
//!
//! * **Shared memo vs per-thread memo** (4 threads, Cartesian-product
//!   candidates × 200 rows, interleaved so every candidate chunk references
//!   most of the unit pool): the pre-planner parallel path re-evaluates
//!   shared units once per worker (`compute_coverage_interned_per_thread`),
//!   while the planned execution builds one shared unit-output memo —
//!   exactly `rows × referenced units` evaluations at any thread count —
//!   and must be faster. The naive reference loop is timed as the common
//!   baseline.
//! * **Row-axis vs transformation-axis** on the GXJoin-style shape the
//!   ROADMAP calls out — 64 generalized-pattern-style candidates × 10^5
//!   rows at 4 threads: chunking 64 candidates leaves transformation-axis
//!   workers rescanning all rows each; chunking rows must win.
//!
//! Covered rows are asserted bit-identical across every leg before timing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tjoin_bench::time_seconds;
use tjoin_core::coverage::plan::CoverageAxis;
use tjoin_core::coverage::reference::compute_coverage_reference;
use tjoin_core::coverage::{
    compute_coverage_interned_per_thread, compute_coverage_planned, CoverageOutcome,
};
use tjoin_core::{PairSet, SynthesisConfig};
use tjoin_units::{IdTransformation, Transformation, Unit, UnitPool};

const THREADS: usize = 4;

fn workload_rows(rows: usize) -> PairSet {
    let raw: Vec<(String, String)> = (0..rows)
        .map(|i| {
            (
                format!("lastname{i:05}, firstname{i:05} middle{:02}", i % 37),
                format!("f{i:05} lastname{i:05}"),
            )
        })
        .collect();
    PairSet::from_strings(&raw, &SynthesisConfig::default().normalize)
}

/// A Cartesian product over a small unit vocabulary, emitted in an
/// interleaved order (stride walk) so that *every* contiguous candidate
/// chunk references nearly the whole pool — the worst case for per-thread
/// memos and exactly what a deduplicated generation stream looks like.
fn workload_transformations(candidates: usize, stride: usize) -> Vec<Transformation> {
    let mut firsts = Vec::new();
    let mut middles = Vec::new();
    let mut lasts = Vec::new();
    for k in 0..12usize {
        firsts.push(Unit::split_substr(' ', 1, k % 4, k % 4 + 1));
        firsts.push(Unit::substr(k, k + 4));
        middles.push(Unit::literal(if k % 2 == 0 { " " } else { "-" }));
        middles.push(Unit::literal(format!("{k:02}")));
        lasts.push(Unit::split(',', k % 3));
    }
    let mut product = Vec::new();
    for f in &firsts {
        for m in &middles {
            for l in lasts.iter().step_by(3) {
                product.push(Transformation::new(vec![f.clone(), m.clone(), l.clone()]));
            }
        }
    }
    assert!(!stride.is_multiple_of(product.len()) && !product.len().is_multiple_of(stride));
    (0..candidates).map(|i| product[(i * stride) % product.len()].clone()).collect()
}

/// The GXJoin-style generalized-pattern pool for the row-axis leg: 64
/// candidates over a compact vocabulary of 8 "first" units — one covering
/// ("first initial"), seven that are non-covering on essentially every row
/// (substrings of the source's trailing "middle…" token, whose characters
/// never occur in the targets) — interleaved so every contiguous candidate
/// chunk references all of them. This is the shape where the per-row
/// non-covering cache does the paper's heavy lifting: a row-axis worker
/// discovers each bad unit once per row and cache-skips every later
/// candidate sharing it, while transformation-axis chunking restarts the
/// per-row cache in every chunk and re-discovers the same bad units once
/// per chunk.
fn wide_transformations() -> Vec<Transformation> {
    // Eight distinct units extracting pieces of the source's trailing
    // "zq…" token: 'z'/'q' never occur in a target, so each is
    // non-covering on every row (substr and split_substr variants are
    // distinct pool entries even when their outputs coincide, exactly as in
    // real generated pools). They sit *last* in their candidates, behind a
    // shared good prefix — so the trial that discovers one does real buffer
    // work first, and a chunk restart that forgets it repeats that work.
    let mut bads = Vec::new();
    for (a, b) in [(0usize, 2usize), (0, 3), (0, 1), (1, 2)] {
        bads.push(Unit::split_substr(' ', 2, a, b));
        bads.push(Unit::substr(17 + a, 17 + b));
    }
    let covering = Transformation::new(vec![
        Unit::split_substr(' ', 1, 0, 1),
        Unit::literal(" "),
        Unit::split(',', 0),
    ]);
    (0..64usize)
        .map(|i| {
            if i % 16 == 0 {
                // One covering candidate per 16-candidate chunk.
                covering.clone()
            } else {
                Transformation::new(vec![
                    Unit::split(',', 0),
                    Unit::literal(" "),
                    bads[i % bads.len()].clone(),
                ])
            }
        })
        .collect()
}

fn intern(ts: &[Transformation]) -> (UnitPool, Vec<IdTransformation>) {
    let mut pool = UnitPool::new();
    let interned = ts
        .iter()
        .map(|t| IdTransformation::new(t.units().iter().map(|u| pool.intern(u.clone())).collect()))
        .collect();
    (pool, interned)
}

fn assert_covered_identical(a: &CoverageOutcome, b: &CoverageOutcome, what: &str) {
    assert_eq!(a.covered_rows, b.covered_rows, "covered rows diverged: {what}");
    assert_eq!(a.potential_trials, b.potential_trials, "potential trials diverged: {what}");
}

fn bench_memo_sharing(c: &mut Criterion) {
    let pairs = workload_rows(200);
    let ts = workload_transformations(2_304, 7);
    let (pool, interned) = intern(&ts);
    let mut group = c.benchmark_group("memo_sharing");
    group.sample_size(10);
    group.bench_function("per_thread_memo_4t", |b| {
        b.iter(|| {
            black_box(compute_coverage_interned_per_thread(
                &pool,
                black_box(&interned),
                &pairs,
                true,
                THREADS,
            ))
        })
    });
    group.bench_function("shared_memo_4t", |b| {
        b.iter(|| {
            black_box(compute_coverage_planned(
                &pool,
                black_box(&interned),
                &pairs,
                true,
                THREADS,
                CoverageAxis::Transformations,
            ))
        })
    });
    group.finish();
}

fn memo_sharing_comparison(_c: &mut Criterion) {
    // --- Leg 1: shared memo vs per-thread memo, transformation axis. ---
    let pairs = workload_rows(200);
    let ts = workload_transformations(2_304, 7);
    let (pool, interned) = intern(&ts);

    let reference = compute_coverage_reference(&ts, &pairs, true, THREADS);
    let per_thread = compute_coverage_interned_per_thread(&pool, &interned, &pairs, true, THREADS);
    let shared = compute_coverage_planned(
        &pool,
        &interned,
        &pairs,
        true,
        THREADS,
        CoverageAxis::Transformations,
    );
    assert_covered_identical(&reference, &per_thread, "per-thread vs reference");
    assert_covered_identical(&reference, &shared, "shared vs reference");
    // Per-chunk trial accounting is shared by all three at equal chunking.
    assert_eq!(per_thread.trials, reference.trials);
    assert_eq!(shared.trials, reference.trials);
    assert_eq!(shared.cache_hits, reference.cache_hits);

    let samples = 11;
    let reference_secs = time_seconds(samples, || {
        black_box(compute_coverage_reference(black_box(&ts), &pairs, true, THREADS));
    });
    let per_thread_secs = time_seconds(samples, || {
        black_box(compute_coverage_interned_per_thread(
            &pool,
            black_box(&interned),
            &pairs,
            true,
            THREADS,
        ));
    });
    let shared_secs = time_seconds(samples, || {
        black_box(compute_coverage_planned(
            &pool,
            black_box(&interned),
            &pairs,
            true,
            THREADS,
            CoverageAxis::Transformations,
        ));
    });

    // --- Leg 2: row axis vs transformation axis on 64 × 10^5. ---
    // Two thirds of the rows are coverable by the
    // [split_substr(' ', 1, 0, 1), literal(" "), split(',', 0)] pattern
    // ("f lastname…"), one third is noise — so the per-chunk sparse row
    // lists the row axis concatenates are long and real.
    // Short rows keep `output_on` cheap, so the scan phase — where the two
    // axes differ — carries the measurement. The source's third token is
    // the bad-unit fodder (see `wide_transformations`); its characters
    // never appear in a target.
    let wide_raw: Vec<(String, String)> = (0..100_000)
        .map(|i| {
            let target = if i % 3 == 2 {
                format!("xw {i}")
            } else {
                format!("f ln{i:05}")
            };
            (format!("ln{i:05}, fn{i:05} zq{:02}", i % 37), target)
        })
        .collect();
    let wide_pairs = PairSet::from_strings(&wide_raw, &SynthesisConfig::default().normalize);
    let wide_ts = wide_transformations();
    let (wide_pool, wide_interned) = intern(&wide_ts);

    let t_axis = compute_coverage_planned(
        &wide_pool,
        &wide_interned,
        &wide_pairs,
        true,
        THREADS,
        CoverageAxis::Transformations,
    );
    let r_axis = compute_coverage_planned(
        &wide_pool,
        &wide_interned,
        &wide_pairs,
        true,
        THREADS,
        CoverageAxis::Rows,
    );
    assert_covered_identical(&t_axis, &r_axis, "row axis vs transformation axis");
    assert!(
        r_axis.covered_rows.iter().any(|rows| !rows.is_empty()),
        "row-axis workload must cover something"
    );

    // The pre-planner engine collapses to serial on this shape (64 < 256
    // candidates): the gap the row axis exists to close.
    let pre_planner =
        compute_coverage_interned_per_thread(&wide_pool, &wide_interned, &wide_pairs, true, THREADS);
    assert_covered_identical(&pre_planner, &r_axis, "pre-planner vs row axis");

    let wide_samples = 9;
    let pre_planner_secs = time_seconds(wide_samples, || {
        black_box(compute_coverage_interned_per_thread(
            &wide_pool,
            black_box(&wide_interned),
            &wide_pairs,
            true,
            THREADS,
        ));
    });
    let t_axis_secs = time_seconds(wide_samples, || {
        black_box(compute_coverage_planned(
            &wide_pool,
            black_box(&wide_interned),
            &wide_pairs,
            true,
            THREADS,
            CoverageAxis::Transformations,
        ));
    });
    let r_axis_secs = time_seconds(wide_samples, || {
        black_box(compute_coverage_planned(
            &wide_pool,
            black_box(&wide_interned),
            &wide_pairs,
            true,
            THREADS,
            CoverageAxis::Rows,
        ));
    });

    let shared_speedup = per_thread_secs / shared_secs;
    let row_axis_speedup = t_axis_secs / r_axis_secs;
    let summary = format!(
        "{{\n  \"benchmark\": \"memo_sharing\",\n  \"threads\": {THREADS},\n  \"shared_memo\": {{\n    \"transformations\": {},\n    \"rows\": {},\n    \"samples\": {samples},\n    \"reference_median_seconds\": {:.6},\n    \"per_thread_median_seconds\": {:.6},\n    \"shared_median_seconds\": {:.6},\n    \"speedup_shared_vs_per_thread\": {:.2},\n    \"reference_unit_evaluations\": {},\n    \"per_thread_unit_evaluations\": {},\n    \"shared_unit_evaluations\": {},\n    \"outcomes_bit_identical\": true\n  }},\n  \"row_axis\": {{\n    \"transformations\": {},\n    \"rows\": {},\n    \"samples\": {wide_samples},\n    \"pre_planner_serial_collapse_median_seconds\": {:.6},\n    \"transformation_axis_median_seconds\": {:.6},\n    \"row_axis_median_seconds\": {:.6},\n    \"speedup_row_vs_transformation_axis\": {:.2},\n    \"speedup_row_vs_pre_planner\": {:.2},\n    \"transformation_axis_trials\": {},\n    \"row_axis_trials\": {},\n    \"transformation_axis_unit_evaluations\": {},\n    \"row_axis_unit_evaluations\": {},\n    \"outcomes_bit_identical\": true\n  }}\n}}\n",
        ts.len(),
        pairs.len(),
        reference_secs,
        per_thread_secs,
        shared_secs,
        shared_speedup,
        reference.unit_evaluations,
        per_thread.unit_evaluations,
        shared.unit_evaluations,
        wide_ts.len(),
        wide_pairs.len(),
        pre_planner_secs,
        t_axis_secs,
        r_axis_secs,
        row_axis_speedup,
        pre_planner_secs / r_axis_secs,
        t_axis.trials,
        r_axis.trials,
        t_axis.unit_evaluations,
        r_axis.unit_evaluations,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_memo.json");
    std::fs::write(path, &summary).expect("write BENCH_memo.json");
    println!(
        "memo_sharing: shared memo {shared_speedup:.2}x over per-thread \
         ({per_thread_secs:.4}s -> {shared_secs:.4}s; reference {reference_secs:.4}s)"
    );
    println!(
        "row_axis: {row_axis_speedup:.2}x over transformation axis at 64x10^5 \
         ({t_axis_secs:.4}s -> {r_axis_secs:.4}s)"
    );
    println!("summary written to {path}");
    // Hard gates are the deterministic work counts; the wall-clock ratios
    // are tracked in the JSON but asserted with slack (this box has one
    // core, so scheduler noise on a ~1.1-1.3x margin is real).
    assert!(
        shared.unit_evaluations * 2 <= per_thread.unit_evaluations,
        "shared memo must at least halve per-thread unit evaluations ({} vs {})",
        shared.unit_evaluations,
        per_thread.unit_evaluations
    );
    assert!(
        r_axis.trials * 2 <= t_axis.trials,
        "row axis must at least halve transformation-axis trials ({} vs {})",
        r_axis.trials,
        t_axis.trials
    );
    assert!(
        shared_speedup > 0.9,
        "shared memo must not lose to per-thread memos at {THREADS} threads, got {shared_speedup:.2}x"
    );
    assert!(
        row_axis_speedup > 0.9,
        "row axis must not lose to transformation axis on 64x10^5, got {row_axis_speedup:.2}x \
         (measured wins are 1.10-1.18x on one core; the halved-trials gate above is the hard claim)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_memo_sharing, memo_sharing_comparison
}
criterion_main!(benches);
