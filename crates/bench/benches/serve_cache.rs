//! Serving-layer benchmark, tracking the resident-corpus claims in
//! `BENCH_serve.json` at the workspace root:
//!
//! * **Cold vs warm**: a hot-skewed request stream served request-by-request
//!   on fresh runners (every request re-normalizes and re-indexes its
//!   columns) against the same stream through a [`JoinService`] whose
//!   resident corpus already holds every column. Outcomes are asserted
//!   bit-identical before timing; the warm wall-clock must be strictly
//!   below the cold one — the whole point of residency.
//! * **Eviction churn**: the same stream under a byte budget of half the
//!   workload's footprint, forcing mid-stream eviction. Outcomes asserted
//!   bit-identical to the cold oracle; the JSON records the hit rate and
//!   eviction count (deterministic per workload seed), and the wall gate
//!   is pathology-only — churn costs rebuilds, it must not cost results.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tjoin_bench::time_seconds;
use tjoin_datasets::{RepositoryConfig, RequestWorkloadConfig};
use tjoin_join::{BatchJoinOutcome, BatchJoinRunner, JoinPipelineConfig};
use tjoin_serve::{JoinService, ServeConfig};

const THREADS: usize = 4;

/// Results-only outcome comparison (wall-clock fields, scheduling counters,
/// and serve counters are measurements, not results).
fn assert_outcomes_identical(a: &BatchJoinOutcome, b: &BatchJoinOutcome, context: &str) {
    assert_eq!(a.reports.len(), b.reports.len(), "{context}: report count");
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.name, rb.name, "{context}: report order");
        assert_eq!(ra.status, rb.status, "{context}: status of {}", ra.name);
        assert_eq!(
            ra.outcome.predicted_pairs, rb.outcome.predicted_pairs,
            "{context}: predicted pairs of {}",
            ra.name
        );
        assert_eq!(ra.outcome.metrics, rb.outcome.metrics, "{context}: metrics of {}", ra.name);
    }
    assert_eq!(a.metrics.micro, b.metrics.micro, "{context}: micro metrics");
    assert_eq!(a.metrics.macro_f1, b.metrics.macro_f1, "{context}: macro F1");
}

fn serve_cache_comparison(_c: &mut Criterion) {
    // Repository discovery is decoy-dominated — most candidate column
    // pairs in a repository are not joinable, so per-request cost is
    // normalize + stats + index over large columns, exactly what residency
    // removes. One small joinable pair per repository keeps the identity
    // assert exercising real predictions (synthesis cost is residency-
    // independent; it runs identically on both legs).
    let mut workload = RequestWorkloadConfig {
        distinct: 3,
        requests: 5,
        repository: RepositoryConfig::new(5, 400).with_decoys(1.0),
    }
    .generate(17);
    for (i, repository) in workload.repositories.iter_mut().enumerate() {
        repository.extend(RepositoryConfig::new(1, 30).with_decoys(0.0).generate(1017 + i as u64));
    }
    let config = JoinPipelineConfig::paper_default();
    let serve = |repositories: &JoinService| {
        for &r in &workload.sequence {
            repositories
                .submit(workload.repositories[r].clone())
                .expect("bench queue capacity is never reached");
        }
        repositories.drain()
    };

    // --- Identity: the cold oracle, then a priming + a fully warm pass. ---
    let oracle: Vec<BatchJoinOutcome> = workload
        .sequence
        .iter()
        .map(|&r| BatchJoinRunner::new(config.clone(), THREADS).run(&workload.repositories[r]))
        .collect();
    assert!(
        oracle.iter().any(|outcome| outcome.metrics.joined_pairs > 0),
        "the joinable pairs must produce predictions for the identity gate to bite"
    );
    let service = JoinService::new(config.clone(), THREADS, ServeConfig::default());
    for (i, (_, outcome)) in serve(&service).iter().enumerate() {
        assert_outcomes_identical(outcome, &oracle[i], &format!("priming request {i}"));
    }
    let primed = service.stats();
    let footprint = primed.bytes_resident;
    assert!(footprint > 0, "the workload must leave columns resident");
    for (i, (_, outcome)) in serve(&service).iter().enumerate() {
        assert_outcomes_identical(outcome, &oracle[i], &format!("warm request {i}"));
    }
    let warmed = service.stats();
    let warm_hits = warmed.hits - primed.hits;
    assert_eq!(warmed.misses, primed.misses, "a warm pass must not miss");
    let distinct_per_request: usize = warm_hits / workload.sequence.len();

    // --- Eviction churn: budget of half the footprint, identity intact. ---
    let budget = footprint / 2;
    let churned = JoinService::new(
        config.clone(),
        THREADS,
        ServeConfig { byte_budget: Some(budget), ..ServeConfig::default() },
    );
    for (i, (_, outcome)) in serve(&churned).iter().enumerate() {
        assert_outcomes_identical(outcome, &oracle[i], &format!("budgeted request {i}"));
        let stats = outcome.serve.expect("service stamps serve stats");
        assert!(stats.bytes_resident <= budget, "hard budget overshot");
    }
    let churn = churned.stats();
    assert!(churn.evictions > 0, "half the footprint must force eviction");
    let churn_hit_rate = churn.hits as f64 / (churn.hits + churn.misses) as f64;

    // --- Timings. ---
    let samples = 5;
    let cold_secs = time_seconds(samples, || {
        for &r in &workload.sequence {
            black_box(
                BatchJoinRunner::new(config.clone(), THREADS)
                    .run(black_box(&workload.repositories[r])),
            );
        }
    });
    let warm_secs = time_seconds(samples, || {
        black_box(serve(&service));
    });
    let churn_secs = time_seconds(samples, || {
        black_box(serve(&churned));
    });

    let warm_speedup = cold_secs / warm_secs;
    let churn_speedup = cold_secs / churn_secs;
    let summary = format!(
        "{{\n  \"benchmark\": \"serve_cache\",\n  \"threads\": {THREADS},\n  \"workload\": {{\n    \"distinct_repositories\": 3,\n    \"requests\": {},\n    \"decoy_pairs_per_repository\": 5,\n    \"decoy_rows_per_pair\": 400,\n    \"joinable_pairs_per_repository\": 1,\n    \"joinable_rows_per_pair\": 30,\n    \"distinct_columns_per_request\": {distinct_per_request},\n    \"resident_footprint_bytes\": {footprint}\n  }},\n  \"cold_vs_warm\": {{\n    \"samples\": {samples},\n    \"cold_median_seconds\": {cold_secs:.6},\n    \"warm_median_seconds\": {warm_secs:.6},\n    \"speedup_warm_vs_cold\": {warm_speedup:.2},\n    \"warm_hit_rate\": 1.0,\n    \"outcomes_bit_identical\": true\n  }},\n  \"eviction_churn\": {{\n    \"byte_budget\": {budget},\n    \"samples\": {samples},\n    \"budgeted_median_seconds\": {churn_secs:.6},\n    \"speedup_budgeted_vs_cold\": {churn_speedup:.2},\n    \"hit_rate\": {churn_hit_rate:.4},\n    \"evictions\": {},\n    \"budget_hard_at_release\": true,\n    \"outcomes_bit_identical\": true\n  }}\n}}\n",
        workload.sequence.len(),
        churn.evictions,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &summary).expect("write BENCH_serve.json");
    println!(
        "serve_cache: warm {warm_speedup:.2}x over cold ({cold_secs:.4}s -> {warm_secs:.4}s), \
         budgeted {churn_speedup:.2}x with {} evictions (hit rate {churn_hit_rate:.2})",
        churn.evictions
    );
    println!("summary written to {path}");
    // The warm claim is the tentpole: serving from residency must beat
    // rebuilding every corpus artifact per request, on any box.
    assert!(
        warm_secs < cold_secs,
        "warm serving ({warm_secs:.4}s) must be strictly below cold ({cold_secs:.4}s)"
    );
    // The churn leg rebuilds evicted columns by design; its wall gate is
    // pathology-only (order-of-magnitude collapse on a contended runner).
    assert!(
        churn_speedup > 0.3,
        "budgeted serving collapsed to {churn_speedup:.2}x of the cold path"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = serve_cache_comparison
}
criterion_main!(benches);
