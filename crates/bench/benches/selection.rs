//! Selection-phase benchmark: the quadratic full-rescan greedy cover
//! (retained in `tjoin_core::cover::reference`) vs the lazy-greedy (CELF)
//! priority-queue cover, at GXJoin-scale candidate counts.
//!
//! Two experiments, both written to `BENCH_selection.json` at the workspace
//! root:
//!
//! * `selection_comparison` — 10^5 synthetic candidates × 2,048 rows,
//!   head-to-head timing of both implementations after asserting the
//!   selected sets are bit-identical (same transformations, same order,
//!   same covered rows). The acceptance bar is a ≥ 5× speedup.
//! * the 10^6-candidate case — 10^6 synthetic sparse coverage lists ×
//!   10^4 rows in the realistic mostly-empty regime: measures the sparse
//!   collection's memory footprint against the dense per-candidate
//!   `RowBitmap` pre-allocation it replaced (~1.25 GB at this shape), then
//!   densifies only the non-empty survivors and times the lazy-greedy
//!   selection over them. The reference rescan is deliberately not run at
//!   10^6 (that is the wall this PR removes); its cost is bounded below by
//!   the 10^5 measurement × 10.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;
use tjoin_core::cover::reference::greedy_cover_reference;
use tjoin_core::cover::{lazy_greedy_cover, ScoredTransformation};
use tjoin_core::RowBitmap;
use tjoin_units::{Transformation, TransformationSet, Unit};

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn transformation_for(i: usize) -> Transformation {
    Transformation::new(vec![
        Unit::substr(i % 8, i % 8 + i % 3 + 1),
        Unit::literal(format!("{i:06}")),
    ])
}

/// A candidate pool shaped like a filtered coverage output: a few dozen
/// "planted" candidates covering disjoint row stripes (these get selected,
/// driving ~`stripes` greedy rounds) plus a large majority of weak
/// candidates covering a handful of rows inside a random stripe (these are
/// what the full rescan pays for and the lazy heap skips).
fn selection_workload(
    candidates: usize,
    rows: usize,
    stripes: usize,
    seed: u64,
) -> Vec<ScoredTransformation> {
    let stripe_len = rows / stripes;
    let mut pool = Vec::with_capacity(candidates);
    for i in 0..candidates {
        let covered = if i < stripes {
            // Planted: stripe i, fully covered.
            let start = (i * stripe_len) as u32;
            RowBitmap::from_rows(rows, &(start..start + stripe_len as u32).collect::<Vec<_>>())
        } else {
            let h = splitmix(seed ^ (i as u64) << 1);
            let stripe = (h as usize) % stripes;
            let start = stripe * stripe_len;
            let picks = (h >> 16) % 12 + 1;
            let rows_in: Vec<u32> = (0..picks)
                .map(|k| (start + (splitmix(h ^ k) as usize) % stripe_len) as u32)
                .collect();
            RowBitmap::from_rows(rows, &rows_in)
        };
        pool.push(ScoredTransformation {
            transformation: transformation_for(i),
            covered,
        });
    }
    pool
}

fn assert_selection_identical(a: &TransformationSet, b: &TransformationSet) {
    assert_eq!(a.total_pairs, b.total_pairs, "total pairs diverged");
    assert_eq!(a.len(), b.len(), "selected counts diverged");
    for (x, y) in a.transformations.iter().zip(&b.transformations) {
        assert_eq!(
            x.transformation.to_string(),
            y.transformation.to_string(),
            "selected transformations diverged"
        );
        assert_eq!(x.covered_rows, y.covered_rows, "covered rows diverged");
    }
}

/// Median seconds of `f` consuming one pre-built pool copy per sample, so
/// the measurement is pure selection — the input clone happens outside the
/// timed region (both cover implementations take candidates by value).
fn time_selection<F>(samples: usize, pool: &[ScoredTransformation], mut f: F) -> f64
where
    F: FnMut(Vec<ScoredTransformation>),
{
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let copy = pool.to_vec();
        let start = Instant::now();
        f(copy);
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|x, y| x.total_cmp(y));
    times[times.len() / 2]
}

fn bench_selection(c: &mut Criterion) {
    // A smaller pool for the per-iteration criterion group so the reference
    // leg stays sampleable.
    let pool = selection_workload(20_000, 2_048, 32, 41);
    let rows = 2_048;
    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    group.bench_function("reference", |b| {
        b.iter(|| black_box(greedy_cover_reference(black_box(pool.clone()), rows)))
    });
    group.bench_function("lazy_greedy", |b| {
        b.iter(|| black_box(lazy_greedy_cover(black_box(pool.clone()), rows)))
    });
    group.finish();
}

/// The 10^6-candidate sparse-collection experiment (see module docs).
/// Returns (dense_bytes, sparse_bytes, survivors, lazy_seconds, selected).
fn large_sparse_case(candidates: usize, rows: usize) -> (u64, u64, usize, f64, usize) {
    // Synthetic sparse coverage lists in the realistic mostly-empty regime:
    // ~2 % of candidates cover anything at all.
    let mut sparse: Vec<Vec<u32>> = Vec::with_capacity(candidates);
    for i in 0..candidates {
        let h = splitmix(0xabcd_ef01 ^ (i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
        if h.is_multiple_of(50) {
            let stripe = (h >> 8) as usize % 64;
            let stripe_len = rows / 64;
            let start = stripe * stripe_len;
            let picks = (h >> 20) % 24 + 1;
            let mut rows_in: Vec<u32> = (0..picks)
                .map(|k| (start + (splitmix(h ^ k) as usize) % stripe_len) as u32)
                .collect();
            rows_in.sort_unstable();
            rows_in.dedup();
            sparse.push(rows_in);
        } else {
            sparse.push(Vec::new());
        }
    }

    // Memory accounting: what the dense pre-allocation would have cost vs
    // what the sparse lists actually hold.
    let dense_bytes = (candidates * rows.div_ceil(64) * 8) as u64;
    let sparse_bytes = sparse
        .iter()
        .map(|v| (std::mem::size_of::<Vec<u32>>() + v.capacity() * 4) as u64)
        .sum::<u64>();

    // Densify only the non-empty survivors (the engine's wiring).
    let survivors: Vec<ScoredTransformation> = sparse
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .map(|(i, v)| ScoredTransformation {
            transformation: transformation_for(i),
            covered: RowBitmap::from_sorted_rows(rows, v),
        })
        .collect();
    let survivor_count = survivors.len();

    let cover = lazy_greedy_cover(survivors.clone(), rows);
    let selected = cover.len();
    let lazy_secs = time_selection(3, &survivors, |copy| {
        black_box(lazy_greedy_cover(copy, rows));
    });
    (dense_bytes, sparse_bytes, survivor_count, lazy_secs, selected)
}

fn selection_comparison(_c: &mut Criterion) {
    // Acceptance experiment: 10^5 candidates, 64 planted stripes so the
    // greedy runs a realistic number of selection rounds.
    let candidates = 100_000;
    let rows = 2_048;
    let pool = selection_workload(candidates, rows, 64, 17);

    let reference_cover = greedy_cover_reference(pool.clone(), rows);
    let lazy_cover = lazy_greedy_cover(pool.clone(), rows);
    assert_selection_identical(&lazy_cover, &reference_cover);

    let samples = 5;
    let reference_secs = time_selection(samples, &pool, |copy| {
        black_box(greedy_cover_reference(copy, rows));
    });
    let lazy_secs = time_selection(samples, &pool, |copy| {
        black_box(lazy_greedy_cover(copy, rows));
    });
    let speedup = reference_secs / lazy_secs;

    // Scale experiment: 10^6 sparse candidates (lazy + memory only).
    let (dense_bytes, sparse_bytes, survivors, large_lazy_secs, large_selected) =
        large_sparse_case(1_000_000, 10_000);

    let summary = format!(
        "{{\n  \"benchmark\": \"selection\",\n  \"candidates\": {candidates},\n  \"rows\": {rows},\n  \"samples\": {samples},\n  \"reference_median_seconds\": {reference_secs:.6},\n  \"lazy_greedy_median_seconds\": {lazy_secs:.6},\n  \"speedup\": {speedup:.2},\n  \"selected\": {},\n  \"selection_bit_identical\": true,\n  \"large_case\": {{\n    \"candidates\": 1000000,\n    \"rows\": 10000,\n    \"dense_collection_bytes\": {dense_bytes},\n    \"sparse_collection_bytes\": {sparse_bytes},\n    \"memory_ratio\": {:.1},\n    \"densified_survivors\": {survivors},\n    \"lazy_greedy_median_seconds\": {large_lazy_secs:.6},\n    \"selected\": {large_selected}\n  }}\n}}\n",
        lazy_cover.len(),
        dense_bytes as f64 / sparse_bytes as f64,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_selection.json");
    std::fs::write(path, &summary).expect("write BENCH_selection.json");
    println!(
        "selection_comparison: speedup {speedup:.2}x (reference {reference_secs:.4}s vs lazy {lazy_secs:.4}s per iter at {candidates} candidates)"
    );
    println!(
        "large case: dense {dense_bytes} B vs sparse {sparse_bytes} B ({:.1}x), {survivors} survivors densified, lazy select {large_lazy_secs:.4}s",
        dense_bytes as f64 / sparse_bytes as f64
    );
    println!("summary written to {path}");
    assert!(
        speedup >= 5.0,
        "lazy-greedy selection must be at least 5x faster at 10^5 candidates, got {speedup:.2}x"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_selection, selection_comparison
}
criterion_main!(benches);
