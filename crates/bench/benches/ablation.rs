//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! duplicate removal, the non-covering-unit cache, and placeholder
//! re-splitting (Section 6.6 of the paper measures the first two).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tjoin_core::{PairSet, SynthesisConfig, SynthesisEngine};
use tjoin_datasets::SyntheticConfig;

fn workload() -> PairSet {
    let dataset = SyntheticConfig::with_fixed_length(60, 60).generate(13);
    let pair = dataset.column_pair();
    let values: Vec<(String, String)> = pair
        .source
        .iter()
        .cloned()
        .zip(pair.target.iter().cloned())
        .collect();
    PairSet::from_strings(&values, &SynthesisConfig::default().normalize)
}

fn bench_pruning_ablation(c: &mut Criterion) {
    let pairs = workload();
    let mut group = c.benchmark_group("pruning_ablation");
    group.sample_size(10);

    let configs: Vec<(&str, SynthesisConfig)> = vec![
        ("full_pruning", SynthesisConfig::default()),
        ("no_cache", SynthesisConfig {
            unit_cache: false,
            ..SynthesisConfig::default()
        }),
        ("no_dedup", SynthesisConfig {
            deduplicate: false,
            ..SynthesisConfig::default()
        }),
        ("no_pruning", SynthesisConfig::default().without_pruning()),
    ];
    for (name, config) in configs {
        let engine = SynthesisEngine::new(config);
        group.bench_function(name, |b| {
            b.iter(|| black_box(engine.discover(black_box(&pairs))))
        });
    }
    group.finish();
}

fn bench_resplit_ablation(c: &mut Criterion) {
    // Person-name rows where re-splitting matters for coverage.
    let rows: Vec<(String, String)> = (0..40)
        .map(|i| {
            (
                format!("Given{i:02} Middle{i:02} Family{i:02}"),
                format!("Given{i:02} M. Family{i:02}"),
            )
        })
        .collect();
    let pairs = PairSet::from_strings(&rows, &SynthesisConfig::default().normalize);
    let mut group = c.benchmark_group("resplit_ablation");
    group.sample_size(10);
    for (name, resplit) in [("with_resplit", true), ("without_resplit", false)] {
        let engine = SynthesisEngine::new(SynthesisConfig {
            resplit_placeholders: resplit,
            ..SynthesisConfig::default()
        });
        group.bench_function(name, |b| {
            b.iter(|| black_box(engine.discover(black_box(&pairs))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pruning_ablation, bench_resplit_ablation);
criterion_main!(benches);
