//! Micro-benchmarks for the transformation-unit substrate: unit application,
//! transformation application, and placeholder (common-substring) detection.
//! These are the inner loops of the coverage phase, the dominant cost in
//! Figure 4 of the paper.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tjoin_units::{CharStr, Transformation, Unit};

fn bench_unit_application(c: &mut Criterion) {
    let source = CharStr::new("prus-czarnecki, andrzej michael");
    let units = vec![
        ("substr", Unit::substr(5, 14)),
        ("split", Unit::split(',', 0)),
        ("split_substr", Unit::split_substr(' ', 1, 0, 1)),
        ("two_char", Unit::two_char_split_substr(',', ' ', 1, 0, 5)),
        ("literal", Unit::literal("@ualberta.ca")),
    ];
    let mut group = c.benchmark_group("unit_application");
    for (name, unit) in units {
        group.bench_function(name, |b| {
            b.iter(|| black_box(unit.output_on(black_box(&source))))
        });
    }
    group.finish();
}

fn bench_transformation_cover(c: &mut Criterion) {
    let t = Transformation::new(vec![
        Unit::split_substr(' ', 1, 0, 1),
        Unit::literal(" "),
        Unit::split(',', 0),
    ]);
    let source = CharStr::new("prus-czarnecki, andrzej");
    c.bench_function("transformation_covers", |b| {
        b.iter(|| black_box(t.covers(black_box(&source), black_box("a prus-czarnecki"))))
    });
}

fn bench_placeholder_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("placeholder_detection");
    for length in [30usize, 100, 280] {
        let source: String = (0..length)
            .map(|i| char::from(b'a' + (i % 23) as u8))
            .collect();
        let target: String = source.chars().rev().collect();
        group.bench_with_input(BenchmarkId::from_parameter(length), &length, |b, _| {
            b.iter(|| {
                black_box(tjoin_text::common_substring_matches(
                    black_box(&source),
                    black_box(&target),
                ))
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_unit_application, bench_transformation_cover, bench_placeholder_detection
}
criterion_main!(benches);
