//! Plain-text report formatting for the experiment binaries.
//!
//! Experiments print fixed-width tables (readable in a terminal, trivially
//! parsed as whitespace-separated values) with one row per dataset or sweep
//! point, mirroring the layout of the paper's tables.

use std::fmt::Write as _;

/// A simple column-aligned report builder.
#[derive(Debug, Clone, Default)]
pub struct Report {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    /// Creates a report with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row; the cell count must match the header.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Appends a free-form note printed under the table.
    pub fn add_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows so far.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the report as fixed-width text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(line, "{:<width$}  ", h, width = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Prints the rendered report to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with three decimals (the paper's precision for ratios).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with two decimals (the paper's precision for coverage).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a large count with thousands separators for readability.
pub fn count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("Table X", &["Dataset", "P", "R"]);
        r.add_row(vec!["Web tables".into(), "0.81".into(), "0.93".into()]);
        r.add_row(vec!["Synth-50".into(), "1.00".into(), "0.88".into()]);
        r.add_note("quick scale");
        let text = r.render();
        assert!(text.contains("== Table X =="));
        assert!(text.contains("Web tables"));
        assert!(text.contains("note: quick scale"));
        assert_eq!(r.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut r = Report::new("t", &["a", "b"]);
        r.add_row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f2(0.999), "1.00");
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(count(1_234_567), "1,234,567");
        assert_eq!(count(42), "42");
    }
}
