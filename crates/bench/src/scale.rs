//! Experiment scale: quick (default) vs the paper's full sizes.

use std::time::Duration;

/// How large the experiment inputs are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down inputs that exercise the same code paths but finish in
    /// minutes on a single core.
    Quick,
    /// The paper's dataset sizes (31 web pairs, 108 spreadsheet pairs, a
    /// 3000-pair open-data sample, Synth-500/L); expect long runtimes,
    /// especially for the Auto-Join baseline.
    Full,
}

impl Scale {
    /// Reads the scale from the command line (`--full`) or the
    /// `TJOIN_BENCH_SCALE` environment variable (`full` / `quick`).
    pub fn from_env_and_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--full") {
            return Scale::Full;
        }
        match std::env::var("TJOIN_BENCH_SCALE").ok().as_deref() {
            Some("full") | Some("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Number of web-table pairs to evaluate.
    pub fn web_pairs(self) -> usize {
        match self {
            Scale::Quick => 6,
            Scale::Full => 31,
        }
    }

    /// Number of spreadsheet pairs to evaluate.
    pub fn spreadsheet_pairs(self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Full => 108,
        }
    }

    /// Open-data rows generated / pairs sampled for synthesis.
    pub fn open_data_rows(self) -> (usize, usize) {
        match self {
            Scale::Quick => (600, 300),
            Scale::Full => (3808, 3000),
        }
    }

    /// Synthetic dataset sizes to include.
    pub fn synth_sizes(self) -> Vec<(usize, bool)> {
        match self {
            // (rows, long_rows?)
            Scale::Quick => vec![(50, false), (50, true), (200, false)],
            Scale::Full => vec![(50, false), (50, true), (500, false), (500, true)],
        }
    }

    /// Repetitions per synthetic configuration (the paper averages 10).
    pub fn synth_repetitions(self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Full => 10,
        }
    }

    /// Wall-clock budget granted to the Auto-Join baseline per table pair
    /// (the paper's cap is 650 000 s ≈ one week; these budgets keep the
    /// harness finite while still letting Auto-Join finish easy pairs).
    pub fn autojoin_budget(self) -> Duration {
        match self {
            Scale::Quick => Duration::from_secs(5),
            Scale::Full => Duration::from_secs(600),
        }
    }

    /// Input lengths swept by the Figure 3 / Figure 4b experiments.
    pub fn length_sweep(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![20, 60, 100, 140, 180],
            Scale::Full => vec![20, 40, 60, 80, 100, 120, 140, 160, 180, 200, 220, 240, 260, 280],
        }
    }

    /// Row counts swept by the Figure 4a experiment.
    pub fn row_sweep(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![50, 100, 250, 500],
            Scale::Full => vec![50, 100, 250, 500, 1000, 1500, 2000],
        }
    }

    /// Rows used in the length sweeps (the paper fixes 100).
    pub fn sweep_rows(self) -> usize {
        match self {
            Scale::Quick => 60,
            Scale::Full => 100,
        }
    }

    /// A short label for report headers.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full (paper sizes)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        assert!(Scale::Quick.web_pairs() < Scale::Full.web_pairs());
        assert!(Scale::Quick.spreadsheet_pairs() < Scale::Full.spreadsheet_pairs());
        assert!(Scale::Quick.open_data_rows().0 < Scale::Full.open_data_rows().0);
        assert!(Scale::Quick.length_sweep().len() < Scale::Full.length_sweep().len());
        assert!(Scale::Quick.autojoin_budget() < Scale::Full.autojoin_budget());
        assert_eq!(Scale::Quick.label(), "quick");
    }

    #[test]
    fn full_matches_paper_sizes() {
        assert_eq!(Scale::Full.web_pairs(), 31);
        assert_eq!(Scale::Full.spreadsheet_pairs(), 108);
        assert_eq!(Scale::Full.open_data_rows().1, 3000);
        assert_eq!(Scale::Full.synth_repetitions(), 10);
        assert!(Scale::Full.length_sweep().contains(&280));
        assert!(Scale::Full.row_sweep().contains(&2000));
    }
}
