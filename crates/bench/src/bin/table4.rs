//! Regenerates Table4 of the paper. Pass `--full` for the paper's sizes.

fn main() {
    let scale = tjoin_bench::Scale::from_env_and_args();
    let report = tjoin_bench::experiments::table4::run(scale, 42);
    report.print();
}
