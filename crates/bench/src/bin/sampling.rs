//! Regenerates the Section 5.3 sampling analysis (analytic + empirical).

fn main() {
    let scale = tjoin_bench::Scale::from_env_and_args();
    tjoin_bench::experiments::sampling::analytic_report().print();
    tjoin_bench::experiments::sampling::empirical_report(scale, 42).print();
}
