//! Regenerates Figure 3 of the paper. Pass `--full` for the paper's sizes.

fn main() {
    let scale = tjoin_bench::Scale::from_env_and_args();
    tjoin_bench::experiments::figures::figure3(scale, 42).print();
}
