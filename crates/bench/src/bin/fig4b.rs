//! Regenerates Figure 4b of the paper. Pass `--full` for the paper's sizes.

fn main() {
    let scale = tjoin_bench::Scale::from_env_and_args();
    tjoin_bench::experiments::figures::figure4b(scale, 42).print();
}
