//! # tjoin-bench
//!
//! The experiment harness: one binary per table and figure of the paper's
//! evaluation (Section 6), plus Criterion micro-benchmarks.
//!
//! | binary | regenerates | paper reference |
//! |---|---|---|
//! | `table1` | row-matching precision / recall / F1 | Table 1 |
//! | `table2` | coverage + runtime, ours vs Auto-Join, n-gram and golden matching | Table 2 |
//! | `table3` | end-to-end join quality vs Auto-FuzzyJoin and Auto-Join | Table 3 |
//! | `table4` | pruning statistics (generated, to-try, duplicates, cache hits) | Table 4 |
//! | `fig3` | pruning ratios as the input length grows | Figure 3 |
//! | `fig4a` | per-module runtime as the number of rows grows | Figure 4a |
//! | `fig4b` | per-module runtime as the input length grows | Figure 4b |
//! | `sampling` | discovery probability under sampling, ours vs Auto-Join | Section 5.3 |
//!
//! Every binary accepts `--full` (or `TJOIN_BENCH_SCALE=full`) to run at the
//! paper's dataset sizes; the default "quick" scale exercises the identical
//! code paths on smaller slices so the whole suite finishes in minutes on a
//! laptop. Binaries print TSV-like rows with the paper's reported values
//! alongside ours where applicable; `EXPERIMENTS.md` records a run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod report;
pub mod scale;
pub mod suite;

pub use report::Report;
pub use scale::Scale;
pub use suite::DatasetInstance;

/// Median seconds per iteration of `f` over `samples` runs — the timing
/// helper shared by the BENCH_*.json-writing comparison benches (coverage,
/// memo_sharing, join_throughput), so the methodology lives in one place.
pub fn time_seconds<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = std::time::Instant::now();
        f();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|x, y| x.total_cmp(y));
    times[times.len() / 2]
}
