//! Experiment implementations, one module per paper table / figure.
//!
//! Each module exposes a `run(scale) -> Report` (or a small set of reports)
//! used by the corresponding binary in `src/bin/`, so the logic is unit
//! testable without spawning processes.

pub mod figures;
pub mod sampling;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

use tjoin_datasets::ColumnPair;
use tjoin_matching::{golden_pairs, MatchingMode, NGramMatcher};

/// Materializes the candidate (source value, target value) pairs of a column
/// pair under the given row-matching mode — the input to synthesis.
pub fn candidate_value_pairs(pair: &ColumnPair, mode: MatchingMode) -> Vec<(String, String)> {
    match mode {
        MatchingMode::NGram => NGramMatcher::with_defaults().candidate_value_pairs(pair),
        MatchingMode::Golden => golden_pairs(pair)
            .into_iter()
            .map(|(s, t)| {
                (
                    pair.source[s as usize].clone(),
                    pair.target[t as usize].clone(),
                )
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_pairs_both_modes() {
        let pair = ColumnPair::aligned(
            "t",
            vec!["Rafiei, Davood".into(), "Bowling, Michael".into()],
            vec!["D Rafiei".into(), "M Bowling".into()],
        );
        let golden = candidate_value_pairs(&pair, MatchingMode::Golden);
        assert_eq!(golden.len(), 2);
        let ngram = candidate_value_pairs(&pair, MatchingMode::NGram);
        assert!(!ngram.is_empty());
    }
}
