//! Table 3: end-to-end join quality (precision / recall / F1) of our
//! approach vs Auto-FuzzyJoin and Auto-Join.

use crate::experiments::candidate_value_pairs;
use crate::report::{f3, Report};
use crate::scale::Scale;
use crate::suite::DatasetInstance;
use tjoin_baselines::{AutoFuzzyJoin, AutoFuzzyJoinConfig, AutoJoin, AutoJoinConfig};
use tjoin_join::{evaluate_join, JoinMetrics, JoinPipeline, JoinPipelineConfig, RowMatchingStrategy};
use tjoin_matching::MatchingMode;

/// One dataset row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Dataset label.
    pub dataset: String,
    /// Our end-to-end join metrics.
    pub ours: JoinMetrics,
    /// Auto-FuzzyJoin metrics.
    pub afj: JoinMetrics,
    /// Auto-Join metrics (None when it found no transformation within budget;
    /// the paper prints "-" for its timed-out entries).
    pub autojoin: Option<JoinMetrics>,
    /// Paper reference F1 for our approach.
    pub paper_f1: Option<f64>,
}

fn average(metrics: &[JoinMetrics]) -> JoinMetrics {
    if metrics.is_empty() {
        return JoinMetrics::default();
    }
    let n = metrics.len() as f64;
    JoinMetrics {
        predicted: metrics.iter().map(|m| m.predicted).sum(),
        golden: metrics.iter().map(|m| m.golden).sum(),
        true_positives: metrics.iter().map(|m| m.true_positives).sum(),
        precision: metrics.iter().map(|m| m.precision).sum::<f64>() / n,
        recall: metrics.iter().map(|m| m.recall).sum::<f64>() / n,
        f1: metrics.iter().map(|m| m.f1).sum::<f64>() / n,
    }
}

/// Runs the end-to-end join comparison.
pub fn compute(scale: Scale, seed: u64) -> Vec<Table3Row> {
    let mut out = Vec::new();
    for instance in DatasetInstance::load_all(scale, seed) {
        let pipeline = JoinPipeline::new(JoinPipelineConfig {
            matching: RowMatchingStrategy::default(),
            synthesis: instance.synthesis.clone(),
            join_min_support: instance.join_min_support,
        });
        let afj = AutoFuzzyJoin::new(AutoFuzzyJoinConfig::default());

        let mut ours_all = Vec::new();
        let mut afj_all = Vec::new();
        let mut aj_all = Vec::new();
        for (i, pair) in instance.pairs.iter().enumerate() {
            // Ours.
            ours_all.push(pipeline.run(pair).metrics);
            // Auto-FuzzyJoin.
            let afj_pairs: Vec<(u32, u32)> = afj
                .join(pair)
                .pairs
                .iter()
                .map(|m| (m.source_row, m.target_row))
                .collect();
            afj_all.push(evaluate_join(&afj_pairs, &pair.golden));
            // Auto-Join: discover on (a sample of) candidate pairs, then join
            // with the same machinery. One pair per family at quick scale.
            let budget_pairs = match scale {
                Scale::Quick => 1,
                Scale::Full => usize::MAX,
            };
            if i < budget_pairs {
                let candidates = candidate_value_pairs(pair, MatchingMode::NGram);
                let aj_input: Vec<(String, String)> =
                    candidates.into_iter().take(500).collect();
                let autojoin = AutoJoin::new(AutoJoinConfig {
                    time_budget: scale.autojoin_budget(),
                    max_depth: instance.synthesis.max_placeholders,
                    ..AutoJoinConfig::default()
                });
                let result = autojoin.discover(&aj_input);
                if !result.transformations.is_empty() {
                    let (_, metrics) = pipeline
                        .join_with_transformations(pair, result.transformations.iter());
                    aj_all.push(metrics);
                }
            }
        }

        out.push(Table3Row {
            dataset: instance.label.clone(),
            ours: average(&ours_all),
            afj: average(&afj_all),
            autojoin: (!aj_all.is_empty()).then(|| average(&aj_all)),
            paper_f1: instance.paper.map(|p| p.join_f1),
        });
    }
    out
}

/// Renders Table 3.
pub fn run(scale: Scale, seed: u64) -> Report {
    let rows = compute(scale, seed);
    let mut report = Report::new(
        format!(
            "Table 3: end-to-end join quality vs Auto-FuzzyJoin and Auto-Join ({})",
            scale.label()
        ),
        &[
            "Dataset", "ours P", "ours R", "ours F", "AFJ P", "AFJ R", "AFJ F", "AJ P", "AJ R",
            "AJ F", "paper F(ours)",
        ],
    );
    for r in rows {
        let (ajp, ajr, ajf) = match r.autojoin {
            Some(m) => (f3(m.precision), f3(m.recall), f3(m.f1)),
            None => ("-".into(), "-".into(), "-".into()),
        };
        report.add_row(vec![
            r.dataset,
            f3(r.ours.precision),
            f3(r.ours.recall),
            f3(r.ours.f1),
            f3(r.afj.precision),
            f3(r.afj.recall),
            f3(r.afj.f1),
            ajp,
            ajr,
            ajf,
            r.paper_f1.map(f3).unwrap_or_else(|| "-".into()),
        ]);
    }
    report.add_note("'-' for Auto-Join means no transformation was found within the time budget (the paper's '-' entries)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tjoin_datasets::SyntheticConfig;

    #[test]
    fn ours_beats_afj_on_reformatted_synthetic_pair() {
        let pair = SyntheticConfig::synth(40).generate(9).column_pair();
        let pipeline = JoinPipeline::new(JoinPipelineConfig {
            matching: RowMatchingStrategy::Golden,
            synthesis: tjoin_core::SynthesisConfig::default(),
            join_min_support: 0.05,
        });
        let ours = pipeline.run(&pair).metrics;
        let afj = AutoFuzzyJoin::new(AutoFuzzyJoinConfig::default());
        let afj_pairs: Vec<(u32, u32)> = afj
            .join(&pair)
            .pairs
            .iter()
            .map(|m| (m.source_row, m.target_row))
            .collect();
        let afj_metrics = evaluate_join(&afj_pairs, &pair.golden);
        assert!(
            ours.f1 >= afj_metrics.f1,
            "ours {:?} vs afj {:?}",
            ours,
            afj_metrics
        );
        assert!(ours.f1 > 0.8, "{ours:?}");
    }
}
