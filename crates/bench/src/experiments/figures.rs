//! Figures 3, 4a, and 4b: pruning ratios and per-module runtime as the input
//! grows vertically (rows) and horizontally (value length).

use crate::report::{count, secs, Report};
use crate::scale::Scale;
use tjoin_core::{PairSet, SynthesisConfig, SynthesisEngine, SynthesisStats};
use tjoin_datasets::SyntheticConfig;

/// One sweep point shared by the three figures.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Number of rows at this point.
    pub rows: usize,
    /// Source value length at this point.
    pub length: usize,
    /// Synthesis statistics measured at this point.
    pub stats: SynthesisStats,
    /// Coverage of the covering set (sanity signal: pruning must not cost
    /// coverage).
    pub set_coverage: f64,
}

/// Runs synthesis on a synthetic pair with the given shape and returns the
/// measured statistics.
pub fn measure(rows: usize, length: usize, seed: u64) -> SweepPoint {
    let dataset = SyntheticConfig::with_fixed_length(rows, length).generate(seed);
    let pair = dataset.column_pair();
    let values: Vec<(String, String)> = pair
        .source
        .iter()
        .cloned()
        .zip(pair.target.iter().cloned())
        .collect();
    let config = SynthesisConfig::default();
    let engine = SynthesisEngine::new(config.clone());
    let result = engine.discover(&PairSet::from_strings(&values, &config.normalize));
    SweepPoint {
        rows,
        length,
        stats: result.stats.clone(),
        set_coverage: result.set_coverage(),
    }
}

/// Figure 3: duplicate-transformation ratio and cache hit ratio as the input
/// length grows (rows fixed).
pub fn figure3(scale: Scale, seed: u64) -> Report {
    let rows = scale.sweep_rows();
    let mut report = Report::new(
        format!("Figure 3: pruning vs input length ({} rows, {})", rows, scale.label()),
        &[
            "Length",
            "Generated",
            "To try",
            "Duplicate %",
            "Cache hit %",
            "Coverage",
        ],
    );
    for length in scale.length_sweep() {
        let point = measure(rows, length, seed);
        report.add_row(vec![
            length.to_string(),
            count(point.stats.generated_transformations),
            count(point.stats.transformations_to_try),
            format!("{:.1}", 100.0 * point.stats.duplicate_ratio()),
            format!("{:.1}", 100.0 * point.stats.cache_hit_ratio()),
            format!("{:.2}", point.set_coverage),
        ]);
    }
    report.add_note("paper Figure 3: both ratios rise with length, duplicates approaching ~98% at length 280");
    report
}

/// Figure 4a: per-module runtime as the number of rows grows (length fixed
/// at 28, the paper's setting).
pub fn figure4a(scale: Scale, seed: u64) -> Report {
    let mut report = Report::new(
        format!("Figure 4a: runtime breakdown vs number of rows (length 28, {})", scale.label()),
        &[
            "Rows",
            "Placeholder gen (s)",
            "Unit extraction (s)",
            "Duplicate removal (s)",
            "Applying trans. (s)",
            "Total (s)",
        ],
    );
    for rows in scale.row_sweep() {
        let point = measure(rows, 28, seed);
        let t = &point.stats.timings;
        report.add_row(vec![
            rows.to_string(),
            secs(t.placeholder_generation),
            secs(t.unit_extraction),
            secs(t.duplicate_removal),
            secs(t.applying_transformations),
            secs(t.total()),
        ]);
    }
    report.add_note("paper Figure 4a: applying transformations dominates and grows near-quadratically without pruning, near-linearly with it");
    report
}

/// Figure 4b: per-module runtime as the input length grows (rows fixed).
pub fn figure4b(scale: Scale, seed: u64) -> Report {
    let rows = scale.sweep_rows();
    let mut report = Report::new(
        format!("Figure 4b: runtime breakdown vs input length ({} rows, {})", rows, scale.label()),
        &[
            "Length",
            "Placeholder gen (s)",
            "Unit extraction (s)",
            "Duplicate removal (s)",
            "Applying trans. (s)",
            "Total (s)",
        ],
    );
    for length in scale.length_sweep() {
        let point = measure(rows, length, seed);
        let t = &point.stats.timings;
        report.add_row(vec![
            length.to_string(),
            secs(t.placeholder_generation),
            secs(t.unit_extraction),
            secs(t.duplicate_removal),
            secs(t.applying_transformations),
            secs(t.total()),
        ]);
    }
    report.add_note("paper Figure 4b: past a certain length, generation/duplicate-removal time overtakes the (heavily cached) application time");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_point_is_consistent() {
        let p = measure(30, 24, 5);
        assert_eq!(p.rows, 30);
        assert_eq!(p.length, 24);
        assert!(p.set_coverage > 0.9, "coverage {}", p.set_coverage);
        assert!(p.stats.generated_transformations > 0);
    }

    #[test]
    fn longer_inputs_generate_more_transformations() {
        let short = measure(20, 24, 7);
        let long = measure(20, 96, 7);
        assert!(
            long.stats.generated_transformations > short.stats.generated_transformations,
            "short {} long {}",
            short.stats.generated_transformations,
            long.stats.generated_transformations
        );
        // More work is pruned in absolute terms on the longer input
        // (Figure 3's observation that pruning absorbs horizontal growth).
        let pruned = |s: &tjoin_core::SynthesisStats| {
            (s.generated_transformations - s.transformations_to_try) + s.cache_hits
        };
        assert!(
            pruned(&long.stats) > pruned(&short.stats),
            "short {:?} long {:?}",
            pruned(&short.stats),
            pruned(&long.stats)
        );
    }
}
