//! Section 5.3: performance under sampling — the analytic discovery
//! probabilities plus an empirical check on synthetic data.

use crate::report::{f2, f3, Report};
use crate::scale::Scale;
use tjoin_core::{SamplingAnalysis, SynthesisConfig, SynthesisEngine};
use tjoin_datasets::SyntheticConfig;

/// The analytic table: discovery probability for our approach vs the
/// probability that a single Auto-Join subset is covered, across sample
/// sizes and coverage fractions.
pub fn analytic_report() -> Report {
    let mut report = Report::new(
        "Section 5.3: analytic sampling behaviour",
        &[
            "Coverage q",
            "Sample s",
            "P(discovered, ours)",
            "P(subset covered, Auto-Join)",
            "E[#subsets], Auto-Join",
        ],
    );
    for &q in &[0.05, 0.10, 0.25, 0.50] {
        for &s in &[2usize, 5, 10, 50, 100] {
            let a = SamplingAnalysis::compute(q, s);
            report.add_row(vec![
                f2(q),
                s.to_string(),
                f3(a.discovery_probability),
                f3(a.autojoin_subset_probability),
                if !a.autojoin_expected_subsets.is_finite() {
                    "inf".into()
                } else if a.autojoin_expected_subsets >= 1e6 {
                    format!("{:.2e}", a.autojoin_expected_subsets)
                } else {
                    format!("{:.0}", a.autojoin_expected_subsets)
                },
            ]);
        }
    }
    report.add_note("paper worked example: q=0.05, s=100 gives 0.96 for ours; Auto-Join needs ~400 subsets of size 2");
    report
}

/// Empirical check: generate a synthetic table whose rarest ground-truth
/// transformation has known coverage, run synthesis on random samples of
/// increasing size, and report how often a transformation equivalent to it
/// (same outputs on the full input) is discovered.
pub fn empirical_report(scale: Scale, seed: u64) -> Report {
    let rows = match scale {
        Scale::Quick => 300,
        Scale::Full => 1000,
    };
    let trials = match scale {
        Scale::Quick => 3,
        Scale::Full => 10,
    };
    let dataset = SyntheticConfig::synth(rows).generate(seed);
    let pair = dataset.column_pair();
    let values: Vec<(String, String)> = pair
        .source
        .iter()
        .cloned()
        .zip(pair.target.iter().cloned())
        .collect();
    let coverages = dataset.true_coverages();
    let rarest = coverages
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);

    let mut report = Report::new(
        format!(
            "Section 5.3: empirical discovery under sampling ({} rows, rarest rule coverage {:.2}, {})",
            rows,
            rarest,
            scale.label()
        ),
        &[
            "Sample size",
            "Analytic P(discover rarest)",
            "Observed full-coverage rate",
        ],
    );

    for &sample in &[10usize, 25, 50, 100, 200] {
        let analytic = tjoin_core::discovery_probability(rarest, sample.min(rows));
        let mut full = 0usize;
        for t in 0..trials {
            let config = SynthesisConfig::default().with_sample(sample, seed + t as u64 + 1);
            let engine = SynthesisEngine::new(config);
            let result = engine.discover_from_strings(&values);
            // Discovery succeeded when the covering set found on the sample
            // covers (essentially) the whole *full* input when re-applied.
            let covered = result
                .cover
                .iter()
                .map(|c| c.transformation.clone())
                .collect::<Vec<_>>();
            let full_cov = coverage_on_full(&covered, &values);
            if full_cov > 0.99 {
                full += 1;
            }
        }
        report.add_row(vec![
            sample.to_string(),
            f3(analytic),
            f2(full as f64 / trials as f64),
        ]);
    }
    report.add_note("a sample run 'succeeds' when the transformations found on the sample cover >99% of the full input");
    report
}

/// Fraction of the full input covered by a transformation list.
fn coverage_on_full(
    transformations: &[tjoin_units::Transformation],
    values: &[(String, String)],
) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let covered = values
        .iter()
        .filter(|(s, t)| {
            transformations
                .iter()
                .any(|tr| tr.apply(&s.to_lowercase()).as_deref() == Some(t.to_lowercase().as_str()))
        })
        .count();
    covered as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_report_has_all_rows() {
        let r = analytic_report();
        assert_eq!(r.row_count(), 4 * 5);
    }

    #[test]
    fn coverage_on_full_counts_correctly() {
        let t = tjoin_units::Transformation::single(tjoin_units::Unit::substr(0, 2));
        let values = vec![
            ("abc".to_owned(), "ab".to_owned()),
            ("xyz".to_owned(), "zz".to_owned()),
        ];
        assert!((coverage_on_full(&[t], &values) - 0.5).abs() < 1e-12);
        assert_eq!(coverage_on_full(&[], &[]), 0.0);
    }
}
