//! Table 4: effectiveness of the pruning strategies (duplicate removal and
//! the non-covering-unit cache).

use crate::experiments::candidate_value_pairs;
use crate::report::{count, Report};
use crate::scale::Scale;
use crate::suite::DatasetInstance;
use tjoin_core::{PairSet, SynthesisEngine};
use tjoin_matching::MatchingMode;

/// One (dataset, matching-mode) row of Table 4.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Dataset label.
    pub dataset: String,
    /// Row-matching mode.
    pub matching: MatchingMode,
    /// Average generated transformations per table pair.
    pub generated: f64,
    /// Average distinct transformations to try per table pair.
    pub to_try: f64,
    /// Duplicate ratio (fraction of generated removed).
    pub duplicate_ratio: f64,
    /// Cache hit ratio over potential (transformation, row) trials.
    pub cache_hit_ratio: f64,
}

/// Runs the pruning-statistics experiment.
pub fn compute(scale: Scale, seed: u64) -> Vec<Table4Row> {
    let mut out = Vec::new();
    for mode in [MatchingMode::NGram, MatchingMode::Golden] {
        for instance in DatasetInstance::load_all(scale, seed) {
            let engine = SynthesisEngine::new(instance.synthesis.clone());
            let mut generated = 0u64;
            let mut to_try = 0u64;
            let mut cache_hits = 0u64;
            let mut potential = 0u64;
            for pair in &instance.pairs {
                let candidates = candidate_value_pairs(pair, mode);
                let result = engine.discover(&PairSet::from_strings(
                    &candidates,
                    &instance.synthesis.normalize,
                ));
                generated += result.stats.generated_transformations;
                to_try += result.stats.transformations_to_try;
                cache_hits += result.stats.cache_hits;
                potential += result.stats.potential_trials;
            }
            let n = instance.pairs.len().max(1) as f64;
            out.push(Table4Row {
                dataset: instance.label.clone(),
                matching: mode,
                generated: generated as f64 / n,
                to_try: to_try as f64 / n,
                duplicate_ratio: if generated == 0 {
                    0.0
                } else {
                    1.0 - to_try as f64 / generated as f64
                },
                cache_hit_ratio: if potential == 0 {
                    0.0
                } else {
                    cache_hits as f64 / potential as f64
                },
            });
        }
    }
    out
}

/// Renders Table 4.
pub fn run(scale: Scale, seed: u64) -> Report {
    let rows = compute(scale, seed);
    let mut report = Report::new(
        format!("Table 4: pruning performance ({})", scale.label()),
        &[
            "Matching",
            "Dataset",
            "Generated trans.",
            "Trans. to try",
            "Duplicate trans.",
            "Cache hit ratio",
        ],
    );
    for r in rows {
        report.add_row(vec![
            r.matching.label().into(),
            r.dataset,
            count(r.generated.round() as u64),
            count(r.to_try.round() as u64),
            format!("{:.1}%", 100.0 * r.duplicate_ratio),
            format!("{:.1}%", 100.0 * r.cache_hit_ratio),
        ]);
    }
    report.add_note("values are means per table pair within each family, as in the paper");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tjoin_datasets::SyntheticConfig;

    #[test]
    fn pruning_ratios_nontrivial() {
        // Synthetic data: the cache does most of the pruning.
        let pair = SyntheticConfig::synth(30).generate(1).column_pair();
        let candidates = candidate_value_pairs(&pair, MatchingMode::Golden);
        let engine = SynthesisEngine::new(tjoin_core::SynthesisConfig::default());
        let result = engine.discover_from_strings(&candidates);
        assert!(result.stats.cache_hit_ratio() > 0.3);
        assert!(result.stats.generated_transformations > 100);

        // Address data: rows share surface structure, so duplicate removal
        // eliminates a large fraction (the Table 4 regime).
        let open = tjoin_datasets::realistic::open_data(2, 200).column_pair();
        let candidates = candidate_value_pairs(&open, MatchingMode::Golden);
        let result = engine.discover_from_strings(&candidates);
        assert!(
            result.stats.duplicate_ratio() > 0.3,
            "duplicate ratio {:.3}",
            result.stats.duplicate_ratio()
        );
    }
}
