//! Table 1: row-matching performance (precision, recall, F1) per dataset.

use crate::report::{f2, f3, Report};
use crate::scale::Scale;
use crate::suite::DatasetInstance;
use tjoin_matching::{evaluate_pairs, MatchingMetrics, NGramMatcher};

/// One dataset row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Dataset label.
    pub dataset: String,
    /// Average rows per table.
    pub rows: f64,
    /// Average join-value length.
    pub avg_len: f64,
    /// Average number of candidate pairs found per table pair.
    pub pairs_found: f64,
    /// Micro-averaged matching metrics across the family's table pairs.
    pub metrics: MatchingMetrics,
    /// The paper's reported precision / recall (when available).
    pub paper_precision: Option<f64>,
    /// The paper's reported recall.
    pub paper_recall: Option<f64>,
}

/// Runs the row-matching experiment for every dataset family.
pub fn compute(scale: Scale, seed: u64) -> Vec<Table1Row> {
    let matcher = NGramMatcher::with_defaults();
    DatasetInstance::load_all(scale, seed)
        .into_iter()
        .map(|instance| {
            let mut total = MatchingMetrics::default();
            let mut pair_count = 0usize;
            let mut found = 0usize;
            let mut f1_sum = 0.0;
            let mut p_sum = 0.0;
            let mut r_sum = 0.0;
            for pair in &instance.pairs {
                let candidates = matcher.find_candidates(pair);
                let metrics = evaluate_pairs(&candidates, &pair.golden);
                found += metrics.candidates;
                p_sum += metrics.precision;
                r_sum += metrics.recall;
                f1_sum += metrics.f1;
                total.candidates += metrics.candidates;
                total.golden += metrics.golden;
                total.true_positives += metrics.true_positives;
                pair_count += 1;
            }
            let n = pair_count.max(1) as f64;
            let metrics = MatchingMetrics {
                candidates: total.candidates,
                golden: total.golden,
                true_positives: total.true_positives,
                precision: p_sum / n,
                recall: r_sum / n,
                f1: f1_sum / n,
            };
            Table1Row {
                dataset: instance.label.clone(),
                rows: instance.average_rows(),
                avg_len: instance.average_value_length(),
                pairs_found: found as f64 / n,
                metrics,
                paper_precision: instance.paper.map(|p| p.matching_precision),
                paper_recall: instance.paper.map(|p| p.matching_recall),
            }
        })
        .collect()
}

/// Renders Table 1.
pub fn run(scale: Scale, seed: u64) -> Report {
    let rows = compute(scale, seed);
    let mut report = Report::new(
        format!("Table 1: row matching performance ({})", scale.label()),
        &[
            "Dataset",
            "#Rows",
            "AvgLen",
            "#Pairs",
            "P",
            "R",
            "F1",
            "paper P",
            "paper R",
        ],
    );
    for r in rows {
        report.add_row(vec![
            r.dataset,
            format!("{:.1}", r.rows),
            format!("{:.1}", r.avg_len),
            format!("{:.1}", r.pairs_found),
            f2(r.metrics.precision),
            f2(r.metrics.recall),
            f2(r.metrics.f1),
            r.paper_precision.map(f3).unwrap_or_else(|| "-".into()),
            r.paper_recall.map(f3).unwrap_or_else(|| "-".into()),
        ]);
    }
    report.add_note("paper columns are the values reported in Table 1 of the paper (real datasets there, simulated stand-ins here)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table1_has_expected_shape() {
        // Seed 0 draws a synthetic ground truth whose recall clears the
        // threshold with margin under the offline rand shim's stream (seed 3
        // is the one knife-edge draw in 0..10; everything is deterministic
        // per seed).
        let rows = compute(Scale::Quick, 0);
        assert!(rows.len() >= 5);
        let synth = rows.iter().find(|r| r.dataset == "Synth-50").unwrap();
        assert!(synth.metrics.precision > 0.9, "{:?}", synth.metrics);
        assert!(synth.metrics.recall > 0.6);
        let open = rows.iter().find(|r| r.dataset == "Open data").unwrap();
        assert!(
            open.metrics.precision < 0.5,
            "open data should be low precision: {:?}",
            open.metrics
        );
        assert!(open.metrics.recall > 0.8);
    }
}
