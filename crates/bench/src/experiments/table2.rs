//! Table 2: coverage and runtime of our approach vs Auto-Join, under both
//! n-gram and golden row matching.

use crate::experiments::candidate_value_pairs;
use crate::report::{f2, secs, Report};
use crate::scale::Scale;
use crate::suite::DatasetInstance;
use std::time::{Duration, Instant};
use tjoin_baselines::{AutoJoin, AutoJoinConfig};
use tjoin_core::SynthesisEngine;
use tjoin_matching::MatchingMode;

/// One (dataset, matching-mode) row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Dataset label.
    pub dataset: String,
    /// Row-matching mode.
    pub matching: MatchingMode,
    /// Our approach: coverage of the best single transformation.
    pub ours_top_coverage: f64,
    /// Our approach: coverage of the covering set.
    pub ours_set_coverage: f64,
    /// Our approach: number of transformations in the covering set.
    pub ours_transformations: f64,
    /// Our approach: total synthesis time.
    pub ours_time: Duration,
    /// Auto-Join: coverage of its best transformation.
    pub autojoin_top_coverage: f64,
    /// Auto-Join: coverage of all returned transformations.
    pub autojoin_set_coverage: f64,
    /// Auto-Join: number of returned transformations.
    pub autojoin_transformations: f64,
    /// Auto-Join: total time (capped by the budget).
    pub autojoin_time: Duration,
    /// Whether Auto-Join hit its time budget on any pair.
    pub autojoin_timed_out: bool,
    /// Table pairs Auto-Join was actually run on (a subset at quick scale).
    pub autojoin_pairs_evaluated: usize,
    /// Paper reference (our top coverage / set coverage under this mode).
    pub paper_top: Option<f64>,
    /// Paper reference set coverage.
    pub paper_set: Option<f64>,
}

/// Number of table pairs per family the Auto-Join baseline is evaluated on.
fn autojoin_pair_budget(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 1,
        Scale::Full => usize::MAX,
    }
}

/// Runs the coverage/runtime comparison.
pub fn compute(scale: Scale, seed: u64) -> Vec<Table2Row> {
    let mut out = Vec::new();
    for mode in [MatchingMode::NGram, MatchingMode::Golden] {
        for instance in DatasetInstance::load_all(scale, seed) {
            let engine = SynthesisEngine::new(instance.synthesis.clone());
            let mut ours_top = 0.0;
            let mut ours_set = 0.0;
            let mut ours_trans = 0.0;
            let mut ours_time = Duration::ZERO;
            let mut aj_top = 0.0;
            let mut aj_set = 0.0;
            let mut aj_trans = 0.0;
            let mut aj_time = Duration::ZERO;
            let mut aj_timed_out = false;
            let mut aj_pairs = 0usize;

            for (i, pair) in instance.pairs.iter().enumerate() {
                let candidates = candidate_value_pairs(pair, mode);
                let start = Instant::now();
                let result = engine.discover(&tjoin_core::PairSet::from_strings(
                    &candidates,
                    &instance.synthesis.normalize,
                ));
                ours_time += start.elapsed();
                ours_top += result.top_coverage();
                ours_set += result.set_coverage();
                ours_trans += result.cover.len() as f64;

                if i < autojoin_pair_budget(scale) {
                    let autojoin = AutoJoin::new(AutoJoinConfig {
                        time_budget: scale.autojoin_budget(),
                        max_depth: instance.synthesis.max_placeholders,
                        ..AutoJoinConfig::default()
                    });
                    // Auto-Join, like the paper's setup, runs on a sample of
                    // the candidate pairs when they are numerous.
                    let aj_input: Vec<(String, String)> = if candidates.len() > 500 {
                        candidates.iter().take(500).cloned().collect()
                    } else {
                        candidates.clone()
                    };
                    let aj_result = autojoin.discover(&aj_input);
                    let set = aj_result.evaluate(&aj_input, &instance.synthesis.normalize);
                    aj_top += set.top_coverage();
                    aj_set += set.set_coverage();
                    aj_trans += set.len() as f64;
                    aj_time += aj_result.elapsed;
                    aj_timed_out |= aj_result.timed_out;
                    aj_pairs += 1;
                }
            }

            let n = instance.pairs.len().max(1) as f64;
            let aj_n = aj_pairs.max(1) as f64;
            out.push(Table2Row {
                dataset: instance.label.clone(),
                matching: mode,
                ours_top_coverage: ours_top / n,
                ours_set_coverage: ours_set / n,
                ours_transformations: ours_trans / n,
                ours_time,
                autojoin_top_coverage: aj_top / aj_n,
                autojoin_set_coverage: aj_set / aj_n,
                autojoin_transformations: aj_trans / aj_n,
                autojoin_time: aj_time,
                autojoin_timed_out: aj_timed_out,
                autojoin_pairs_evaluated: aj_pairs,
                paper_top: instance.paper.map(|p| p.top_coverage),
                paper_set: instance.paper.map(|p| p.set_coverage),
            });
        }
    }
    out
}

/// Renders Table 2.
pub fn run(scale: Scale, seed: u64) -> Report {
    let rows = compute(scale, seed);
    let mut report = Report::new(
        format!(
            "Table 2: transformation coverage and runtime, ours vs Auto-Join ({})",
            scale.label()
        ),
        &[
            "Matching",
            "Dataset",
            "TopCov",
            "(AJ)",
            "Coverage",
            "(AJ)",
            "#Trans",
            "(AJ)",
            "Time(s)",
            "(AJ s)",
            "paperTop",
            "paperCov",
        ],
    );
    for r in rows {
        report.add_row(vec![
            r.matching.label().into(),
            r.dataset,
            f2(r.ours_top_coverage),
            f2(r.autojoin_top_coverage),
            f2(r.ours_set_coverage),
            f2(r.autojoin_set_coverage),
            format!("{:.1}", r.ours_transformations),
            format!("{:.1}", r.autojoin_transformations),
            secs(r.ours_time),
            format!(
                "{}{}",
                secs(r.autojoin_time),
                if r.autojoin_timed_out { "*" } else { "" }
            ),
            r.paper_top.map(f2).unwrap_or_else(|| "-".into()),
            r.paper_set.map(f2).unwrap_or_else(|| "-".into()),
        ]);
    }
    report.add_note("(AJ) columns are the Auto-Join baseline; * marks runs that hit the time budget");
    report.add_note("Auto-Join is evaluated on one table pair per family at quick scale (all pairs with --full)");
    report.add_note("paperTop/paperCov are the paper's Table 2 values for our approach under the same matching mode");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tjoin_datasets::SyntheticConfig;

    /// A miniature version of the comparison on one synthetic pair, so the
    /// full table logic stays fast enough for unit testing.
    #[test]
    fn ours_beats_autojoin_on_work_for_one_pair() {
        let pair = SyntheticConfig::synth(30).generate(3).column_pair();
        let candidates = candidate_value_pairs(&pair, MatchingMode::Golden);
        let engine = SynthesisEngine::new(tjoin_core::SynthesisConfig::default());
        let ours = engine.discover_from_strings(&candidates);
        assert!((ours.set_coverage() - 1.0).abs() < 1e-9);

        let autojoin = AutoJoin::new(AutoJoinConfig {
            subset_count: 3,
            time_budget: Duration::from_secs(10),
            ..AutoJoinConfig::default()
        });
        let aj = autojoin.discover(&candidates);
        let aj_set = aj.evaluate(&candidates, &tjoin_text::NormalizeOptions::default());
        assert!(aj_set.set_coverage() <= 1.0);
        // The cost proxy the analysis argues about: blind unit enumeration
        // far exceeds placeholder-guided generation.
        assert!(aj.units_enumerated > ours.stats.generated_transformations);
    }
}
