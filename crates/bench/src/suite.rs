//! Dataset loading for the experiment harness.
//!
//! A [`DatasetInstance`] bundles the table pairs of one benchmark family
//! (Web tables, Spreadsheet, Open data, Synth-N / Synth-NL) at the chosen
//! scale, together with the synthesis / join parameters the paper uses for
//! that family (placeholder bound, sampling, support thresholds).

use crate::scale::Scale;
use tjoin_core::SynthesisConfig;
use tjoin_datasets::{realistic, ColumnPair, SyntheticConfig};

/// One benchmark family instantiated at a scale.
#[derive(Debug, Clone)]
pub struct DatasetInstance {
    /// The label used in the paper's tables ("Web tables", "Synth-50L", ...).
    pub label: String,
    /// The column pairs of the family (one per table pair).
    pub pairs: Vec<ColumnPair>,
    /// The synthesis configuration the paper uses for this family.
    pub synthesis: SynthesisConfig,
    /// The end-to-end join support threshold (Table 3: 5 %, 2 % for Open data).
    pub join_min_support: f64,
    /// The paper's reported values for this family, for side-by-side printing
    /// (None when the paper has no row for it at this scale).
    pub paper: Option<PaperReference>,
}

/// Reference numbers from the paper for side-by-side reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperReference {
    /// Table 1: row matching precision.
    pub matching_precision: f64,
    /// Table 1: row matching recall.
    pub matching_recall: f64,
    /// Table 2 (n-gram panel): our-approach top coverage.
    pub top_coverage: f64,
    /// Table 2 (n-gram panel): our-approach covering-set coverage.
    pub set_coverage: f64,
    /// Table 3: our-approach end-to-end join F1.
    pub join_f1: f64,
}

impl DatasetInstance {
    /// Loads every benchmark family at the given scale, in the order the
    /// paper's tables list them.
    pub fn load_all(scale: Scale, seed: u64) -> Vec<DatasetInstance> {
        let mut out = Vec::new();
        out.push(Self::web_tables(scale, seed));
        out.push(Self::spreadsheet(scale, seed));
        out.push(Self::open_data(scale, seed));
        for (rows, long) in scale.synth_sizes() {
            out.push(Self::synthetic(scale, seed, rows, long));
        }
        out
    }

    /// The simulated web-tables family.
    pub fn web_tables(scale: Scale, seed: u64) -> DatasetInstance {
        let pairs: Vec<ColumnPair> = realistic::web_tables(seed)
            .into_iter()
            .take(scale.web_pairs())
            .map(|p| p.column_pair())
            .collect();
        DatasetInstance {
            label: "Web tables".into(),
            pairs,
            synthesis: SynthesisConfig::default(),
            join_min_support: 0.05,
            paper: Some(PaperReference {
                matching_precision: 0.81,
                matching_recall: 0.93,
                top_coverage: 0.58,
                set_coverage: 1.00,
                join_f1: 0.713,
            }),
        }
    }

    /// The simulated spreadsheet (FlashFill-style) family.
    pub fn spreadsheet(scale: Scale, seed: u64) -> DatasetInstance {
        let pairs: Vec<ColumnPair> = realistic::spreadsheet(seed)
            .into_iter()
            .take(scale.spreadsheet_pairs())
            .map(|p| p.column_pair())
            .collect();
        DatasetInstance {
            label: "Spreadsheet".into(),
            pairs,
            synthesis: SynthesisConfig::spreadsheet(),
            join_min_support: 0.05,
            paper: Some(PaperReference {
                matching_precision: 0.95,
                matching_recall: 0.93,
                top_coverage: 0.73,
                set_coverage: 1.00,
                join_f1: 0.812,
            }),
        }
    }

    /// The simulated open-data family (one large pair, sampled synthesis).
    pub fn open_data(scale: Scale, seed: u64) -> DatasetInstance {
        let (rows, sample) = scale.open_data_rows();
        let pair = realistic::open_data(seed, rows).column_pair();
        DatasetInstance {
            label: "Open data".into(),
            pairs: vec![pair],
            synthesis: SynthesisConfig::default()
                .with_sample(sample, seed)
                .with_min_support(0.01),
            join_min_support: 0.02,
            paper: Some(PaperReference {
                matching_precision: 0.01,
                matching_recall: 0.92,
                top_coverage: 0.30,
                set_coverage: 0.56,
                join_f1: 0.700,
            }),
        }
    }

    /// A synthetic Synth-N / Synth-NL family.
    pub fn synthetic(scale: Scale, seed: u64, rows: usize, long: bool) -> DatasetInstance {
        let config = if long {
            SyntheticConfig::synth_long(rows)
        } else {
            SyntheticConfig::synth(rows)
        };
        let pairs: Vec<ColumnPair> = (0..scale.synth_repetitions())
            .map(|rep| config.generate(seed.wrapping_add(rep as u64)).column_pair())
            .collect();
        let label = format!("Synth-{rows}{}", if long { "L" } else { "" });
        let paper = match (rows, long) {
            (50, false) => Some(PaperReference {
                matching_precision: 1.00,
                matching_recall: 0.88,
                top_coverage: 0.42,
                set_coverage: 1.00,
                join_f1: 0.979,
            }),
            (50, true) => Some(PaperReference {
                matching_precision: 1.00,
                matching_recall: 0.96,
                top_coverage: 0.40,
                set_coverage: 1.00,
                join_f1: 0.999,
            }),
            (500, false) => Some(PaperReference {
                matching_precision: 0.97,
                matching_recall: 0.81,
                top_coverage: 0.39,
                set_coverage: 1.00,
                join_f1: 0.890,
            }),
            (500, true) => Some(PaperReference {
                matching_precision: 0.96,
                matching_recall: 0.89,
                top_coverage: 0.35,
                set_coverage: 0.68,
                join_f1: 0.955,
            }),
            _ => None,
        };
        DatasetInstance {
            label,
            pairs,
            synthesis: SynthesisConfig::default(),
            join_min_support: 0.05,
            paper,
        }
    }

    /// Average number of rows per table in the family.
    pub fn average_rows(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        self.pairs
            .iter()
            .map(|p| p.source_len() as f64)
            .sum::<f64>()
            / self.pairs.len() as f64
    }

    /// Average join-value length across the family.
    pub fn average_value_length(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        self.pairs
            .iter()
            .map(ColumnPair::average_value_length)
            .sum::<f64>()
            / self.pairs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_loads() {
        let suite = DatasetInstance::load_all(Scale::Quick, 1);
        assert!(suite.len() >= 5);
        let labels: Vec<&str> = suite.iter().map(|d| d.label.as_str()).collect();
        assert!(labels.contains(&"Web tables"));
        assert!(labels.contains(&"Spreadsheet"));
        assert!(labels.contains(&"Open data"));
        assert!(labels.iter().any(|l| l.starts_with("Synth-")));
        for d in &suite {
            assert!(!d.pairs.is_empty(), "{} has no pairs", d.label);
            assert!(d.average_rows() > 0.0);
            assert!(d.average_value_length() > 0.0);
        }
    }

    #[test]
    fn paper_parameters_match_section_6_2() {
        let spreadsheet = DatasetInstance::spreadsheet(Scale::Quick, 1);
        assert_eq!(spreadsheet.synthesis.max_placeholders, 4);
        let web = DatasetInstance::web_tables(Scale::Quick, 1);
        assert_eq!(web.synthesis.max_placeholders, 3);
        let open = DatasetInstance::open_data(Scale::Quick, 1);
        assert!(open.synthesis.sample_size.is_some());
        assert!((open.join_min_support - 0.02).abs() < 1e-12);
        assert!((web.join_min_support - 0.05).abs() < 1e-12);
    }

    #[test]
    fn synthetic_labels() {
        assert_eq!(DatasetInstance::synthetic(Scale::Quick, 1, 50, false).label, "Synth-50");
        assert_eq!(DatasetInstance::synthetic(Scale::Quick, 1, 500, true).label, "Synth-500L");
    }
}
