//! Cross-crate integration tests: datasets → row matching → synthesis → join.

use tabjoin::prelude::*;

/// The synthesis engine recovers the ground-truth rules of a synthetic table
/// pair (the Synth-N setting of Section 6.1) under golden row matching.
#[test]
fn synthetic_ground_truth_recovered() {
    let dataset = SyntheticConfig::synth(40).generate(11);
    let pair = dataset.column_pair();
    let rows: Vec<(String, String)> = pair
        .source
        .iter()
        .cloned()
        .zip(pair.target.iter().cloned())
        .collect();
    let engine = SynthesisEngine::new(SynthesisConfig::default());
    let result = engine.discover_from_strings(&rows);
    assert!(
        (result.set_coverage() - 1.0).abs() < 1e-9,
        "covering set must cover every synthetic row, got {}\n{}",
        result.set_coverage(),
        result.cover
    );
    // The paper generates 3 transformations per synthetic table; the greedy
    // cover should not need many more than that.
    assert!(
        result.cover.len() <= 6,
        "cover unexpectedly large: {}",
        result.cover.len()
    );
}

/// End-to-end join on a simulated web-table pair reaches a reasonable F1 with
/// n-gram matching, and a better one with golden matching.
#[test]
fn web_table_pair_end_to_end() {
    let pairs = BenchmarkKind::WebTables.generate(3);
    // The name-abbreviation topic is the paper's running example.
    let pair = pairs
        .iter()
        .find(|p| p.name.contains("staff-names"))
        .expect("staff-names topic present")
        .column_pair();

    let ngram = JoinPipeline::new(JoinPipelineConfig::paper_default()).run(&pair);
    assert!(
        ngram.metrics.f1 > 0.5,
        "n-gram end-to-end f1 too low: {:?}",
        ngram.metrics
    );

    let golden_cfg = JoinPipelineConfig {
        matching: RowMatchingStrategy::Golden,
        ..JoinPipelineConfig::paper_default()
    };
    let golden = JoinPipeline::new(golden_cfg).run(&pair);
    assert!(
        golden.metrics.f1 >= ngram.metrics.f1 - 0.05,
        "golden matching should not be much worse: {:?} vs {:?}",
        golden.metrics,
        ngram.metrics
    );
    assert!(golden.metrics.precision > 0.8);
}

/// Spreadsheet-style tasks are mostly coverable by a single transformation
/// (the property driving the paper's numbers on that benchmark).
#[test]
fn spreadsheet_tasks_single_rule() {
    let pairs = BenchmarkKind::Spreadsheet.generate(5);
    let engine = SynthesisEngine::new(SynthesisConfig::spreadsheet());
    let mut single_rule = 0usize;
    let mut checked = 0usize;
    for pair in pairs.iter().take(12) {
        let cp = pair.column_pair();
        let rows: Vec<(String, String)> = cp
            .source
            .iter()
            .cloned()
            .zip(cp.target.iter().cloned())
            .collect();
        let result = engine.discover_from_strings(&rows);
        checked += 1;
        if result.top_coverage() > 0.95 {
            single_rule += 1;
        }
        assert!(
            result.set_coverage() > 0.9,
            "task {} covering set too small: {}",
            pair.name,
            result.set_coverage()
        );
    }
    assert!(
        single_rule * 2 >= checked,
        "expected most tasks to be single-rule: {single_rule}/{checked}"
    );
}

/// The n-gram matcher has high recall on the synthetic benchmark and the
/// engine tolerates its false positives (Table 1 + Table 2 behaviour).
#[test]
fn ngram_matching_feeds_synthesis() {
    // Seed 19 draws ground-truth transformations whose outputs share enough
    // long n-grams with their sources for the matcher to reach high (but not
    // perfect) recall; everything downstream is deterministic given the seed.
    let dataset = SyntheticConfig::synth(50).generate(19);
    let pair = dataset.column_pair();
    let matcher = NGramMatcher::with_defaults();
    let candidates = matcher.find_candidates(&pair);
    let metrics = tabjoin::matching::evaluate_pairs(&candidates, &pair.golden);
    assert!(metrics.recall > 0.7, "recall {:?}", metrics);

    let values: Vec<(String, String)> = candidates
        .iter()
        .map(|m| {
            (
                pair.source[m.source_row as usize].clone(),
                pair.target[m.target_row as usize].clone(),
            )
        })
        .collect();
    let result = SynthesisEngine::new(SynthesisConfig::default()).discover_from_strings(&values);
    assert!(
        result.set_coverage() > 0.8,
        "coverage {} over {} candidate pairs",
        result.set_coverage(),
        values.len()
    );
}

/// Auto-Join and our engine find transformations of comparable coverage on a
/// clean single-rule input, while the engine needs far fewer unit
/// evaluations (the Table 2 running-time argument, checked via work counts
/// rather than wall-clock to stay robust in CI).
#[test]
fn autojoin_comparison_on_single_rule_data() {
    let rows: Vec<(String, String)> = (0..20)
        .map(|i| {
            (
                format!("employee-{i:02}, unit-{}", i % 4),
                format!("unit-{} employee-{i:02}", i % 4),
            )
        })
        .collect();
    let ours = SynthesisEngine::new(SynthesisConfig::default()).discover_from_strings(&rows);
    assert!((ours.set_coverage() - 1.0).abs() < 1e-9);

    let aj = AutoJoin::new(AutoJoinConfig {
        subset_count: 4,
        time_budget: std::time::Duration::from_secs(30),
        ..AutoJoinConfig::default()
    });
    let aj_result = aj.discover(&rows);
    let aj_set = aj_result.evaluate(&rows, &tabjoin::text::NormalizeOptions::default());
    assert!(aj_set.set_coverage() > 0.5, "auto-join coverage {}", aj_set.set_coverage());

    // Work comparison: the blind parameter sweep evaluates far more units
    // than the placeholder-guided engine generates transformations.
    assert!(
        aj_result.units_enumerated > ours.stats.generated_transformations,
        "auto-join work {} vs ours {}",
        aj_result.units_enumerated,
        ours.stats.generated_transformations
    );
}

/// The open-data regime: low-precision row matching plus sampling and a
/// support threshold still produce a usable join (Section 6.4).
#[test]
fn open_data_sampling_recovery() {
    // A scaled-down open-data pair: the generator keeps the skew at any size.
    let small = tabjoin::datasets::realistic::open_data(1, 500).column_pair();
    let matcher = NGramMatcher::with_defaults();
    let candidates = matcher.find_candidates(&small);
    let metrics = tabjoin::matching::evaluate_pairs(&candidates, &small.golden);
    assert!(
        metrics.recall > 0.8,
        "open-data matching recall too low: {:?}",
        metrics
    );
    assert!(
        metrics.precision < 0.6,
        "open-data matching should be noisy, precision {:?}",
        metrics
    );

    // With ~3% matcher precision the dominant rule's support in the sample
    // sits near the join support threshold; an 800-pair sample separates it
    // from the junk literal rules (whose support is a fixed handful of
    // duplicated addresses, so their *fraction* shrinks as the sample grows)
    // and makes the outcome robust across generator seeds rather than a
    // knife-edge draw.
    let pipeline = JoinPipeline::new(JoinPipelineConfig {
        matching: RowMatchingStrategy::NGram(NGramMatcherConfig::default()),
        synthesis: SynthesisConfig::default()
            .with_sample(800, 5)
            .with_min_support(0.01),
        join_min_support: 0.015,
    });
    let outcome = pipeline.run(&small);
    // At this scaled-down size the support threshold is a weak filter, so the
    // join over-predicts relative to the paper's full-size run (see
    // EXPERIMENTS.md); it must still recover most true pairs and stay well
    // above the similarity-only baseline's behaviour on this data.
    assert!(
        outcome.metrics.recall > 0.5,
        "join recall {:?}",
        outcome.metrics
    );
    assert!(
        outcome.metrics.precision > 0.15,
        "join precision {:?}",
        outcome.metrics
    );
    assert!(outcome.metrics.f1 > 0.25, "join f1 {:?}", outcome.metrics);
}
