//! Integration tests pinned to specific claims made in the paper.

use tabjoin::prelude::*;
use tabjoin::units::UnitKind;

/// Repository-scale batching must not degrade quality (the premise under
/// which GXJoin/QJoin-style many-column-pairs discovery is run through one
/// shared thread budget): on a generated heterogeneous repository, every
/// joinable pair's F1 under the batch runner is at least the per-pair
/// pipeline's, and decoy pairs stay below the support floor — no
/// transformation survives filtering, so nothing is predicted for them.
#[test]
fn batch_join_preserves_per_pair_quality_and_rejects_decoys() {
    let repository = RepositoryConfig::new(8, 60).generate(11);
    assert!(
        repository.iter().any(|p| p.name.ends_with("-decoy")),
        "repository must contain a decoy"
    );
    let config = JoinPipelineConfig::paper_default(); // 5% support floor
    let batch = BatchJoinRunner::new(config.clone(), 4).run(&repository);
    assert_eq!(batch.reports.len(), repository.len());

    for (pair, report) in repository.iter().zip(&batch.reports) {
        if pair.name.ends_with("-decoy") {
            assert!(
                report.outcome.transformations.is_empty(),
                "decoy {} kept transformations above the support floor: {}",
                pair.name,
                report.outcome.transformations
            );
            assert!(
                report.outcome.predicted_pairs.is_empty(),
                "decoy {} predicted pairs {:?}",
                pair.name,
                report.outcome.predicted_pairs
            );
        } else {
            let solo = JoinPipeline::new(config.clone()).run(pair);
            assert!(
                report.outcome.metrics.f1 >= solo.metrics.f1 - 1e-9,
                "batch degraded {}: {} vs {}",
                pair.name,
                report.outcome.metrics.f1,
                solo.metrics.f1
            );
            assert!(
                report.outcome.metrics.f1 > 0.5,
                "joinable pair {} barely joined: {:?}",
                pair.name,
                report.outcome.metrics
            );
        }
    }
    assert!(batch.metrics.micro.f1 > 0.5, "{:?}", batch.metrics);
}

/// Lemma 1: every SplitSplitSubstr program over the paper's example formats
/// is expressible with the four units the paper keeps. (The unit-level
/// property test lives in `tjoin-units`; this checks the engine never needs
/// the nested split to reach full coverage on nested-delimiter data.)
#[test]
fn lemma1_engine_covers_nested_delimiters_without_splitsplitsubstr() {
    // Targets extracted from inside two levels of delimiters.
    let rows = vec![
        ("smith.john@ualberta.ca", "john"),
        ("doe.jane@ualberta.ca", "jane"),
        ("wong.alex@ualberta.ca", "alex"),
    ];
    let config = SynthesisConfig::default();
    assert!(!config.unit_kinds.contains(&UnitKind::SplitSplitSubstr));
    let result = SynthesisEngine::new(config).discover_from_strings(&rows);
    assert!(
        (result.set_coverage() - 1.0).abs() < 1e-9,
        "{}",
        result.cover
    );
}

/// Section 5.3's worked example: a transformation with 5% coverage is
/// discovered from a 100-row sample with probability ≈ 0.96, while Auto-Join
/// needs ~400 subsets of size 2 in expectation.
#[test]
fn sampling_analysis_matches_paper_numbers() {
    let p = tabjoin::synthesis::discovery_probability(0.05, 100);
    assert!((p - 0.96).abs() < 0.01, "discovery probability {p}");
    let subsets = tabjoin::synthesis::sampling::autojoin_expected_subsets(0.05, 2);
    assert!((subsets - 400.0).abs() < 1e-6, "expected subsets {subsets}");
}

/// Table 4's qualitative claim: a large share of generated transformations
/// are duplicates (on structured real-world-style data) and the
/// non-covering-unit cache removes most of the remaining work — while
/// pruning never changes the answer.
#[test]
fn pruning_statistics_have_the_papers_shape() {
    // Address-style rows (the open-data benchmark) where rows share much
    // surface structure, the regime in which Table 4 reports ~50% duplicates.
    let pair = tabjoin::datasets::realistic::open_data(7, 250).column_pair();
    let rows: Vec<(String, String)> = (0..250)
        .map(|i| (pair.source[i].clone(), pair.target[i].clone()))
        .collect();
    let result = SynthesisEngine::new(SynthesisConfig::default()).discover_from_strings(&rows);
    let stats = &result.stats;
    assert!(
        stats.duplicate_ratio() > 0.3,
        "duplicate ratio {:.3} unexpectedly low",
        stats.duplicate_ratio()
    );
    assert!(
        stats.cache_hit_ratio() > 0.5,
        "cache hit ratio {:.3} unexpectedly low",
        stats.cache_hit_ratio()
    );

    // Pruning must never change the answer (Section 6.6 evaluates time only);
    // checked on a smaller synthetic input to keep the unpruned run cheap.
    let synth = SyntheticConfig::synth(25).generate(7).column_pair();
    let synth_rows: Vec<(String, String)> = synth
        .source
        .iter()
        .cloned()
        .zip(synth.target.iter().cloned())
        .collect();
    let pruned =
        SynthesisEngine::new(SynthesisConfig::default()).discover_from_strings(&synth_rows);
    let unpruned = SynthesisEngine::new(SynthesisConfig::default().without_pruning())
        .discover_from_strings(&synth_rows);
    assert!((pruned.set_coverage() - unpruned.set_coverage()).abs() < 1e-9);
    assert!((pruned.top_coverage() - unpruned.top_coverage()).abs() < 1e-9);
}

/// Lemma 2/3 behaviour: re-splitting maximal placeholders at separators can
/// only help coverage (the engine with re-splitting finds at least as much
/// coverage as without it).
#[test]
fn resplitting_never_hurts_coverage() {
    let rows = vec![
        ("Victor Robbie Kasumba", "Victor R. Kasumba"),
        ("Maria Elena Fuentes", "Maria E. Fuentes"),
        ("John Quincy Adams", "John Q. Adams"),
    ];
    let with = SynthesisEngine::new(SynthesisConfig::default()).discover_from_strings(&rows);
    let without = {
        let c = SynthesisConfig {
            resplit_placeholders: false,
            ..SynthesisConfig::default()
        };
        SynthesisEngine::new(c).discover_from_strings(&rows)
    };
    assert!(with.set_coverage() >= without.set_coverage() - 1e-9);
    assert!((with.set_coverage() - 1.0).abs() < 1e-9, "{}", with.cover);
}

/// The paper's optimality criteria (Section 4.1.2): when one transformation
/// covers a strict superset of another's rows, the greedy cover never keeps
/// the dominated one.
#[test]
fn dominated_transformations_not_selected() {
    let rows = vec![
        ("alpha one", "one"),
        ("beta two", "two"),
        ("gamma three", "three"),
        ("delta four", "four"),
    ];
    let result = SynthesisEngine::new(SynthesisConfig::default()).discover_from_strings(&rows);
    assert!((result.set_coverage() - 1.0).abs() < 1e-9);
    // The cover must be the single Split-based rule, not a collection of
    // row-specific literals/substrings it dominates.
    assert_eq!(result.cover.len(), 1, "{}", result.cover);
    assert_eq!(result.cover.transformations[0].coverage(), 4);
}

/// Auto-Join's subset assumption (Section 3.2): when the input mixes two
/// formats, subsets straddling both formats cannot produce a transformation,
/// so Auto-Join's covering set stays well below full coverage while ours
/// covers everything.
#[test]
fn mixed_format_coverage_gap_vs_autojoin() {
    let mut rows: Vec<(String, String)> = Vec::new();
    for i in 0..8 {
        rows.push((format!("person{i:02}, alpha"), format!("a person{i:02}")));
        rows.push((format!("person{i:02}x, beta"), format!("person{i:02}x AT beta dot org")));
    }
    let ours = SynthesisEngine::new(SynthesisConfig::default()).discover_from_strings(&rows);
    assert!(ours.set_coverage() > 0.9, "ours {}", ours.cover);

    let aj = AutoJoin::new(AutoJoinConfig {
        subset_count: 6,
        subset_size: 3,
        time_budget: std::time::Duration::from_secs(30),
        ..AutoJoinConfig::default()
    });
    let aj_result = aj.discover(&rows);
    let aj_set = aj_result.evaluate(&rows, &tabjoin::text::NormalizeOptions::default());
    assert!(
        aj_set.set_coverage() <= ours.set_coverage() + 1e-9,
        "auto-join {} vs ours {}",
        aj_set.set_coverage(),
        ours.set_coverage()
    );
}
