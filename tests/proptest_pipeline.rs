//! Property-based integration tests over the synthesis engine and the join
//! pipeline: invariants that must hold for *any* input, not only the curated
//! examples.

use proptest::prelude::*;
use tabjoin::prelude::*;

/// Strategy for small sets of (source, target) pairs where the target is
/// derived from the source by one of a few format rules, optionally with a
/// noise row appended.
fn formatted_rows() -> impl Strategy<Value = Vec<(String, String)>> {
    let word = || proptest::string::string_regex("[a-z]{3,8}").unwrap();
    let row = (word(), word(), 0u8..3).prop_map(|(a, b, rule)| {
        let source = format!("{b}, {a}");
        let target = match rule {
            0 => format!("{} {b}", &a[..1]),
            1 => format!("{a}.{b}@x.ca"),
            _ => b.to_string(),
        };
        (source, target)
    });
    prop::collection::vec(row, 2..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every row the engine reports as covered by a transformation really is
    /// covered (re-applying the transformation reproduces the target), and
    /// coverage statistics are internally consistent.
    #[test]
    fn reported_coverage_is_sound(rows in formatted_rows()) {
        let engine = SynthesisEngine::new(SynthesisConfig::default());
        let result = engine.discover_from_strings(&rows);
        let normalized: Vec<(String, String)> = rows
            .iter()
            .map(|(s, t)| (s.to_lowercase(), t.to_lowercase()))
            .collect();
        for covered in result.cover.iter() {
            for &row in &covered.covered_rows {
                let (src, tgt) = &normalized[row as usize];
                let output = covered.transformation.apply(src);
                prop_assert_eq!(
                    output.as_deref(),
                    Some(tgt.as_str()),
                    "transformation {} does not cover row {}",
                    covered.transformation,
                    row
                );
            }
        }
        prop_assert!(result.set_coverage() >= result.top_coverage() - 1e-9);
        prop_assert!(result.top_coverage() >= 0.0 && result.set_coverage() <= 1.0);
        let s = &result.stats;
        prop_assert!(s.generated_transformations >= s.transformations_to_try);
        prop_assert!(s.coverage_trials + s.cache_hits <= s.potential_trials);
    }

    /// Pruning (duplicate removal + unit cache) never changes coverage.
    #[test]
    fn pruning_is_lossless(rows in formatted_rows()) {
        let pruned = SynthesisEngine::new(SynthesisConfig::default())
            .discover_from_strings(&rows);
        let unpruned = SynthesisEngine::new(SynthesisConfig::default().without_pruning())
            .discover_from_strings(&rows);
        prop_assert!((pruned.set_coverage() - unpruned.set_coverage()).abs() < 1e-9);
        prop_assert!((pruned.top_coverage() - unpruned.top_coverage()).abs() < 1e-9);
    }

    /// Join metrics are proper: bounded by [0, 1], and perfect exactly when
    /// predicted pairs equal golden pairs.
    #[test]
    fn join_metrics_are_bounded(rows in formatted_rows()) {
        let pair = ColumnPair::aligned(
            "prop",
            rows.iter().map(|(s, _)| s.clone()).collect(),
            rows.iter().map(|(_, t)| t.clone()).collect(),
        );
        let pipeline = JoinPipeline::new(JoinPipelineConfig {
            matching: RowMatchingStrategy::Golden,
            join_min_support: 0.0,
            ..JoinPipelineConfig::paper_default()
        });
        let outcome = pipeline.run(&pair);
        let m = outcome.metrics;
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.f1));
        prop_assert!(m.true_positives <= m.predicted && m.true_positives <= m.golden);
    }

    /// The greedy covering set never contains a transformation whose covered
    /// rows are all covered by the transformations selected before it
    /// (no useless selections).
    #[test]
    fn cover_has_no_useless_members(rows in formatted_rows()) {
        let result = SynthesisEngine::new(SynthesisConfig::default())
            .discover_from_strings(&rows);
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for t in result.cover.iter() {
            let adds_new = t.covered_rows.iter().any(|r| !seen.contains(r));
            prop_assert!(adds_new, "useless member {}", t.transformation);
            seen.extend(t.covered_rows.iter().copied());
        }
    }
}
