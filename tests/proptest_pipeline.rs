//! Property-based integration tests over the synthesis engine and the join
//! pipeline: invariants that must hold for *any* input, not only the curated
//! examples.

use proptest::prelude::*;
use tabjoin::prelude::*;
use tabjoin::synthesis::coverage::reference::compute_coverage_reference;
use tabjoin::synthesis::coverage::compute_coverage;
use tabjoin::synthesis::pair::PairSet;
use tabjoin::text::NormalizeOptions;

/// Strategy for small sets of (source, target) pairs where the target is
/// derived from the source by one of a few format rules, optionally with a
/// noise row appended.
fn formatted_rows() -> impl Strategy<Value = Vec<(String, String)>> {
    let word = || proptest::string::string_regex("[a-z]{3,8}").unwrap();
    let row = (word(), word(), 0u8..3).prop_map(|(a, b, rule)| {
        let source = format!("{b}, {a}");
        let target = match rule {
            0 => format!("{} {b}", &a[..1]),
            1 => format!("{a}.{b}@x.ca"),
            _ => b.to_string(),
        };
        (source, target)
    });
    prop::collection::vec(row, 2..8)
}

/// Strategy for arbitrary units over realistic delimiters and positions.
fn any_unit() -> impl Strategy<Value = Unit> {
    let pos = || 0usize..12;
    let delim = || prop_oneof![Just(','), Just(';'), Just(' '), Just('-'), Just('@')];
    prop_oneof![
        (pos(), pos()).prop_map(|(a, b)| Unit::substr(a.min(b), a.max(b))),
        (delim(), 0usize..4).prop_map(|(d, i)| Unit::split(d, i)),
        (delim(), 0usize..4, pos(), pos())
            .prop_map(|(d, i, a, b)| Unit::split_substr(d, i, a.min(b), a.max(b))),
        "[a-z@. ]{0,4}".prop_map(Unit::literal),
    ]
}

/// Strategy for a random unit pool plus transformations drawn as sequences
/// over that pool — the Cartesian-product shape the coverage cache exploits
/// (shared units recur across many transformations).
fn pooled_transformations() -> impl Strategy<Value = Vec<Transformation>> {
    (prop::collection::vec(any_unit(), 2..7), 0usize..400).prop_map(|(pool, picks)| {
        // Derive up to ~40 transformations deterministically from `picks` by
        // walking index combinations over the pool.
        let n = pool.len();
        (0..(picks % 40) + 1)
            .map(|t| {
                let len = t % 3 + 1;
                Transformation::new(
                    (0..len)
                        .map(|j| pool[(t * 7 + j * 3 + picks) % n].clone())
                        .collect(),
                )
            })
            .collect()
    })
}

/// Strategy for small row sets of short strings with realistic delimiters.
fn random_rows() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(
        ("[a-z,;@ -]{0,14}", "[a-z,;@ -]{0,10}"),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every row the engine reports as covered by a transformation really is
    /// covered (re-applying the transformation reproduces the target), and
    /// coverage statistics are internally consistent.
    #[test]
    fn reported_coverage_is_sound(rows in formatted_rows()) {
        let engine = SynthesisEngine::new(SynthesisConfig::default());
        let result = engine.discover_from_strings(&rows);
        let normalized: Vec<(String, String)> = rows
            .iter()
            .map(|(s, t)| (s.to_lowercase(), t.to_lowercase()))
            .collect();
        for covered in result.cover.iter() {
            for &row in &covered.covered_rows {
                let (src, tgt) = &normalized[row as usize];
                let output = covered.transformation.apply(src);
                prop_assert_eq!(
                    output.as_deref(),
                    Some(tgt.as_str()),
                    "transformation {} does not cover row {}",
                    covered.transformation,
                    row
                );
            }
        }
        prop_assert!(result.set_coverage() >= result.top_coverage() - 1e-9);
        prop_assert!(result.top_coverage() >= 0.0 && result.set_coverage() <= 1.0);
        let s = &result.stats;
        prop_assert!(s.generated_transformations >= s.transformations_to_try);
        prop_assert!(s.coverage_trials + s.cache_hits <= s.potential_trials);
    }

    /// Pruning (duplicate removal + unit cache) never changes coverage.
    #[test]
    fn pruning_is_lossless(rows in formatted_rows()) {
        let pruned = SynthesisEngine::new(SynthesisConfig::default())
            .discover_from_strings(&rows);
        let unpruned = SynthesisEngine::new(SynthesisConfig::default().without_pruning())
            .discover_from_strings(&rows);
        prop_assert!((pruned.set_coverage() - unpruned.set_coverage()).abs() < 1e-9);
        prop_assert!((pruned.top_coverage() - unpruned.top_coverage()).abs() < 1e-9);
    }

    /// Join metrics are proper: bounded by [0, 1], and perfect exactly when
    /// predicted pairs equal golden pairs.
    #[test]
    fn join_metrics_are_bounded(rows in formatted_rows()) {
        let pair = ColumnPair::aligned(
            "prop",
            rows.iter().map(|(s, _)| s.clone()).collect(),
            rows.iter().map(|(_, t)| t.clone()).collect(),
        );
        let pipeline = JoinPipeline::new(JoinPipelineConfig {
            matching: RowMatchingStrategy::Golden,
            join_min_support: 0.0,
            ..JoinPipelineConfig::paper_default()
        });
        let outcome = pipeline.run(&pair);
        let m = outcome.metrics;
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.f1));
        prop_assert!(m.true_positives <= m.predicted && m.true_positives <= m.golden);
    }

    /// The greedy covering set never contains a transformation whose covered
    /// rows are all covered by the transformations selected before it
    /// (no useless selections).
    #[test]
    fn cover_has_no_useless_members(rows in formatted_rows()) {
        let result = SynthesisEngine::new(SynthesisConfig::default())
            .discover_from_strings(&rows);
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for t in result.cover.iter() {
            let adds_new = t.covered_rows.iter().any(|r| !seen.contains(r));
            prop_assert!(adds_new, "useless member {}", t.transformation);
            seen.extend(t.covered_rows.iter().copied());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The interned coverage engine (unit pool + per-row memoization +
    /// bitset cache + bitmap coverage) returns byte-identical covered rows
    /// to the retained naive reference implementation — across random unit
    /// pools and row sets, with and without the cache, sequentially and
    /// with 4-thread planning — and trial/cache-hit counts exactly matching
    /// the resolved execution plan's contract (serial and row-axis plans:
    /// the serial reference; transformation-axis plans: the reference
    /// summed over the plan's own candidate chunks).
    #[test]
    fn interned_coverage_matches_reference(
        ts in pooled_transformations(),
        rows in random_rows(),
        use_cache in prop_oneof![Just(true), Just(false)],
    ) {
        use tabjoin::synthesis::coverage::plan::{
            plan_execution, CoverageAxis, ExecutionPlan,
        };
        let set = PairSet::from_strings(&rows, &NormalizeOptions::none());
        let reference = compute_coverage_reference(&ts, &set, use_cache, 1);
        for threads in [1usize, 4] {
            let interned = compute_coverage(&ts, &set, use_cache, threads);
            prop_assert_eq!(
                interned.covered_rows_as_vecs(),
                reference.covered_rows_as_vecs(),
                "covered rows diverged (cache={}, threads={})", use_cache, threads
            );
            let plan = plan_execution(ts.len(), set.len(), threads, CoverageAxis::Auto);
            let (expected_trials, expected_hits) = match plan {
                ExecutionPlan::Serial | ExecutionPlan::Rows { .. } => {
                    (reference.trials, reference.cache_hits)
                }
                ExecutionPlan::Transformations { chunk_size, .. } => ts
                    .chunks(chunk_size)
                    .map(|c| compute_coverage_reference(c, &set, use_cache, 1))
                    .fold((0, 0), |(t, h), r| (t + r.trials, h + r.cache_hits)),
            };
            prop_assert_eq!(interned.trials, expected_trials,
                "trials diverged (cache={}, threads={}, plan={:?})", use_cache, threads, plan);
            prop_assert_eq!(interned.cache_hits, expected_hits,
                "cache hits diverged (cache={}, threads={}, plan={:?})", use_cache, threads, plan);
            prop_assert_eq!(interned.potential_trials, reference.potential_trials);

            // Memoization bound: each (row, unit) pair is evaluated at most
            // once per worker — and exactly once globally under shared-memo
            // plans — so evaluations never exceed rows x distinct units per
            // worker (threads = 1: the plain serial bound).
            let distinct_units: std::collections::HashSet<&Unit> =
                ts.iter().flat_map(|t| t.units()).collect();
            prop_assert!(
                interned.unit_evaluations
                    <= (set.len() * distinct_units.len() * threads) as u64,
                "memo bound violated: {} evaluations for {} rows x {} units x {} threads",
                interned.unit_evaluations, set.len(), distinct_units.len(), threads
            );
        }
    }
}
